"""Tests for the flow-aware half of ``repro.analysis``.

Covers the foundations (CFG shape, dataflow fixpoints, call-graph
resolution) on synthetic functions, a failing + passing fixture pair for
every flow rule family (lock-order, ctx-propagation, resource-release,
rpc-arity), the incremental CLI (``--since``, ``--cache``, SARIF), and
the meta-test that the real tree lints clean under the flow rules.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

import repro.analysis.rules  # noqa: F401  (registers the built-in rules)
from repro.analysis.cfg import build_cfg
from repro.analysis.callgraph import CallGraph, module_name
from repro.analysis.cli import changed_files, main, run_lint
from repro.analysis.config import LintConfig
from repro.analysis.core import Project
from repro.analysis.dataflow import solve_backward, solve_forward
from repro.analysis.registry import RULES, iter_rules

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A root that exists nowhere on disk: project rules then see only the
#: in-memory fixture files added below, never the real tree.
FIXTURE_ROOT = Path("/nonexistent-analysis-fixtures")


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def fixture_project(files, config=None):
    project = Project(FIXTURE_ROOT, config or LintConfig())
    for relpath, source in files.items():
        sf = project.add(relpath, textwrap.dedent(source))
        assert sf is not None, f"fixture {relpath} must parse"
    return project


def lint_file(source, path="src/repro/optimizer/_fixture.py", rules=None, config=None):
    project = fixture_project({path: source}, config)
    sf = project.files[path]
    found = []
    for registered in iter_rules("file"):
        if rules is not None and registered.name not in rules:
            continue
        found.extend(registered.check(sf, project))
    return [f for f in found if not sf.suppressed(f)]


def rules_of(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCfg:
    def test_linear_function_chains_to_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                y = x + 1
                return y
            """
        )
        assign = cfg.find_blocks(lambda s: isinstance(s, ast.Assign))[0]
        ret = cfg.find_blocks(lambda s: isinstance(s, ast.Return))[0]
        assert (assign.id, "next") in [(b, k) for b, k in cfg.entry.succs] or (
            assign.id,
            "next",
        ) in cfg.entry.succs
        assert (ret.id, "next") in assign.succs
        assert (cfg.exit.id, "return") in ret.succs

    def test_if_else_has_true_false_edges_and_join(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        branch = cfg.find_blocks(lambda s: isinstance(s, ast.If))[0]
        kinds = sorted(kind for _, kind in branch.succs)
        assert kinds == ["false", "true"]
        # Both assignment arms reach the same return block.
        ret = cfg.find_blocks(lambda s: isinstance(s, ast.Return))[0]
        reaching = {b.id for b in cfg.reachable()}
        assert ret.id in reaching

    def test_while_loop_back_edge_and_break(self):
        cfg = cfg_of(
            """
            def f(xs):
                while xs:
                    if done(xs):
                        break
                    step(xs)
                return xs
            """
        )
        header = cfg.find_blocks(lambda s: isinstance(s, ast.While))[0]
        assert any(kind == "loop" and dst == header.id for dst, kind in _all_edges(cfg))
        brk = cfg.find_blocks(lambda s: isinstance(s, ast.Break))[0]
        assert any(kind == "break" for _, kind in brk.succs)

    def test_while_true_without_break_never_falls_through(self):
        cfg = cfg_of(
            """
            def f():
                while True:
                    spin()
                return 1
            """
        )
        # The trailing return is unreachable: never built into the graph.
        assert cfg.find_blocks(lambda s: isinstance(s, ast.Return)) == []

    def test_call_statement_gets_exception_edge_to_raise_exit(self):
        cfg = cfg_of(
            """
            def f():
                work()
            """
        )
        call = cfg.find_blocks(lambda s: isinstance(s, ast.Expr))[0]
        assert (cfg.raise_exit.id, "except") in call.succs

    def test_except_handler_receives_exception_edge(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except ValueError:
                    recover()
            """
        )
        call = cfg.find_blocks(
            lambda s: isinstance(s, ast.Expr)
            and isinstance(s.value, ast.Call)
            and s.value.func.id == "work"
        )[0]
        handler = cfg.find_blocks(lambda s: isinstance(s, ast.ExceptHandler))[0]
        assert (handler.id, "except") in call.succs
        # ValueError is not a catch-all: the exception can also continue out.
        assert (cfg.raise_exit.id, "except") in call.succs

    def test_catchall_handler_stops_propagation(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                except Exception:
                    pass
            """
        )
        call = cfg.find_blocks(
            lambda s: isinstance(s, ast.Expr) and isinstance(s.value, ast.Call)
        )[0]
        assert (cfg.raise_exit.id, "except") not in call.succs

    def test_finally_runs_on_exception_path_and_return_path(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    work()
                    return 1
                finally:
                    cleanup()
            """
        )
        cleanup = cfg.find_blocks(
            lambda s: isinstance(s, ast.Expr)
            and isinstance(s.value, ast.Call)
            and s.value.func.id == "cleanup"
        )[0]
        reachable_from_cleanup = {b.id for b in cfg.reachable(cleanup)}
        assert cfg.exit.id in reachable_from_cleanup  # the routed return
        assert cfg.raise_exit.id in reachable_from_cleanup  # re-dispatch


def _all_edges(cfg):
    return [(dst, kind) for b in cfg.blocks for dst, kind in b.succs]


# ----------------------------------------------------------------------
# dataflow solver
# ----------------------------------------------------------------------
class TestDataflow:
    def test_forward_all_paths_meet(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    touch()
                return 1
            """
        )

        def transfer(block, fact):
            touched = fact or (
                isinstance(block.stmt, ast.Expr)
                and any(
                    isinstance(n, ast.Call) and getattr(n.func, "id", "") == "touch"
                    for n in ast.walk(block.stmt)
                )
            )
            return {"*": touched}

        facts = solve_forward(cfg, False, transfer, all)
        # touch() happens only on the true branch: not an all-paths fact.
        assert facts[cfg.exit.id] is False

    def test_forward_branch_kind_override(self):
        cfg = cfg_of(
            """
            def f(x):
                if x is None:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        branch = cfg.find_blocks(lambda s: isinstance(s, ast.If))[0]

        def transfer(block, fact):
            if block.id == branch.id:
                return {"*": fact, "true": "is-none", "false": "not-none"}
            return {"*": fact}

        facts = solve_forward(cfg, "top", transfer, lambda fs: "/".join(sorted(set(fs))))
        arms = cfg.find_blocks(lambda s: isinstance(s, ast.Assign))
        per_arm = sorted(facts[b.id] for b in arms)
        assert per_arm == ["is-none", "not-none"]

    def test_backward_reaches_entry(self):
        cfg = cfg_of(
            """
            def f():
                a = 1
                return a
            """
        )
        facts = solve_backward(cfg, 0, lambda block, fact: fact + 1, max)
        # Entry is further from the exits than the return statement.
        ret = cfg.find_blocks(lambda s: isinstance(s, ast.Return))[0]
        assert facts[cfg.entry.id] > facts[ret.id]


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_name(self):
        assert module_name("src/repro/engine/backend.py") == "repro.engine.backend"
        assert module_name("src/repro/api/__init__.py") == "repro.api"
        assert module_name("README.md") is None

    def test_self_and_inherited_method_resolution(self):
        project = fixture_project(
            {
                "src/repro/optimizer/_base.py": """
                class Base:
                    def shared(self):
                        return 1
                """,
                "src/repro/optimizer/_impl.py": """
                from repro.optimizer._base import Base

                class Impl(Base):
                    def run(self):
                        self.own()
                        self.shared()
                        mystery()
                    def own(self):
                        return 2
                """,
            }
        )
        graph = CallGraph.build(project)
        callees = {site.callee for site in graph.callees("repro.optimizer._impl.Impl.run")}
        assert "repro.optimizer._impl.Impl.own" in callees
        assert "repro.optimizer._base.Base.shared" in callees
        assert "?mystery" in callees  # unresolved stays explicit

    def test_class_constructor_resolves_to_init(self):
        project = fixture_project(
            {
                "src/repro/optimizer/_ctor.py": """
                class Thing:
                    def __init__(self):
                        self.x = 1

                def make():
                    return Thing()
                """
            }
        )
        graph = CallGraph.build(project)
        callees = {s.callee for s in graph.callees("repro.optimizer._ctor.make")}
        assert "repro.optimizer._ctor.Thing.__init__" in callees

    def test_unknown_callsite_is_marked(self):
        project = fixture_project(
            {
                "src/repro/optimizer/_dyn.py": """
                def go(obj):
                    obj.method()
                """
            }
        )
        graph = CallGraph.build(project)
        sites = graph.callees("repro.optimizer._dyn.go")
        assert sites and all(site.unknown for site in sites)


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------
class TestLockOrder:
    def _check(self, files):
        project = fixture_project(files)
        return list(RULES["lock-order"].check(project))

    def test_two_lock_cycle_detected(self):
        # The seeded deadlock: two locks taken in opposite orders.
        findings = self._check(
            {
                "src/repro/optimizer/_deadlock.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def forward():
                    with lock_a:
                        with lock_b:
                            pass

                def backward():
                    with lock_b:
                        with lock_a:
                            pass
                """
            }
        )
        assert rules_of(findings) == ["lock-order"]
        assert "potential deadlock" in findings[0].message
        assert "lock_a" in findings[0].message and "lock_b" in findings[0].message

    def test_cycle_through_call_graph_detected(self):
        findings = self._check(
            {
                "src/repro/optimizer/_svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._stats_lock = threading.Lock()

                    def update(self):
                        with self._lock:
                            self._bump()

                    def _bump(self):
                        with self._stats_lock:
                            pass

                    def report(self):
                        with self._stats_lock:
                            with self._lock:
                                pass
                """
            }
        )
        assert rules_of(findings) == ["lock-order"]

    def test_consistent_order_is_clean(self):
        findings = self._check(
            {
                "src/repro/optimizer/_ok.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def one():
                    with lock_a:
                        with lock_b:
                            pass

                def two():
                    with lock_a:
                        with lock_b:
                            pass
                """
            }
        )
        assert findings == []

    def test_bounded_acquire_is_exempt(self):
        findings = self._check(
            {
                "src/repro/optimizer/_bounded.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def one():
                    with lock_a:
                        acquired = lock_b.acquire(timeout=1.0)

                def two():
                    with lock_b:
                        with lock_a:
                            pass
                """
            }
        )
        assert findings == []


# ----------------------------------------------------------------------
# ctx-propagation
# ----------------------------------------------------------------------
class TestCtxPropagation:
    def test_dropped_ctxs_backend_flagged(self):
        findings = lint_file(
            """
            class Backend:
                def plan_many(self, queries, options=None, ctxs=None):
                    return [self.plan(q, options) for q in queries]
            """,
            path="src/repro/engine/_fixture_backend.py",
            rules={"ctx-propagation"},
        )
        assert rules_of(findings) == ["ctx-propagation"]
        assert "ctxs" in findings[0].message

    def test_consulting_ctxs_first_passes(self):
        findings = lint_file(
            """
            class Backend:
                def plan_many(self, queries, options=None, ctxs=None):
                    if ctxs is None:
                        return [self.plan(q, options) for q in queries]
                    live = self._split_expired(ctxs, len(queries))
                    return [
                        None if ctx is None else self.plan(q, options)
                        for q, ctx in zip(queries, live)
                    ]
            """,
            path="src/repro/engine/_fixture_backend.py",
            rules={"ctx-propagation"},
        )
        assert findings == []

    def test_protocol_stub_passes(self):
        findings = lint_file(
            """
            class EngineBackend:
                def plan_many(self, queries, options=None, ctxs=None):
                    ...
            """,
            path="src/repro/engine/_fixture_proto.py",
            rules={"ctx-propagation"},
        )
        assert findings == []

    def test_minted_context_dropped_flagged(self):
        findings = lint_file(
            """
            from repro.api.context import RequestContext

            class Service:
                def submit(self, query):
                    ctx = RequestContext.mint(query, timeout_s=1.0)
                    return self._backend.plan(query)
            """,
            path="src/repro/api/_fixture_svc.py",
            rules={"ctx-propagation"},
        )
        assert rules_of(findings) == ["ctx-propagation"]
        assert "mints" in findings[0].message

    def test_minted_context_used_passes(self):
        findings = lint_file(
            """
            from repro.api.context import RequestContext

            class Service:
                def submit(self, query):
                    ctx = RequestContext.mint(query, timeout_s=1.0)
                    return self._backend.plan(query, ctx=ctx)
            """,
            path="src/repro/api/_fixture_svc.py",
            rules={"ctx-propagation"},
        )
        assert findings == []

    def test_raise_path_may_drop_context(self):
        # Refusing a request (admission control) legitimately abandons it.
        findings = lint_file(
            """
            from repro.api.context import RequestContext

            class Service:
                def submit(self, query):
                    ctx = RequestContext.mint(query, timeout_s=1.0)
                    if self._full():
                        raise RuntimeError("rejected")
                    return self._backend.plan(query, ctx=ctx)
            """,
            path="src/repro/api/_fixture_svc.py",
            rules={"ctx-propagation"},
        )
        assert findings == []

    def test_mint_outside_api_not_held_to_contract(self):
        findings = lint_file(
            """
            from repro.api.context import RequestContext

            def helper(query):
                ctx = RequestContext.mint(query, timeout_s=1.0)
                return query
            """,
            path="src/repro/engine/_fixture_other.py",
            rules={"ctx-propagation"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# resource-release
# ----------------------------------------------------------------------
class TestResourceRelease:
    def test_leak_on_exception_flagged(self):
        # The seeded fixture: settimeout/makefile raising leaks the socket.
        findings = lint_file(
            """
            import socket

            class Conn:
                def ensure(self):
                    sock = socket.create_connection(("h", 1), timeout=1.0)
                    sock.settimeout(1.0)
                    self._sock = sock
                    self._stream = sock.makefile("rwb")
            """,
            rules={"resource-release"},
        )
        assert rules_of(findings) == ["resource-release"]
        assert "exception" in findings[0].message

    def test_guarded_by_try_passes(self):
        findings = lint_file(
            """
            import socket

            class Conn:
                def ensure(self):
                    sock = socket.create_connection(("h", 1), timeout=1.0)
                    try:
                        sock.settimeout(1.0)
                        stream = sock.makefile("rwb")
                    except BaseException:
                        sock.close()
                        raise
                    self._sock = sock
                    self._stream = stream
            """,
            rules={"resource-release"},
        )
        assert findings == []

    def test_return_path_leak_flagged(self):
        findings = lint_file(
            """
            import socket

            def probe(host):
                sock = socket.create_connection((host, 1))
                if not sock:
                    return None
                return True
            """,
            rules={"resource-release"},
        )
        assert rules_of(findings) == ["resource-release"]

    def test_finally_with_none_guard_passes(self):
        findings = lint_file(
            """
            def serve(sock):
                stream = None
                try:
                    stream = sock.makefile("rwb")
                    pump(stream)
                finally:
                    if stream is not None:
                        stream.close()
            """,
            rules={"resource-release"},
        )
        assert findings == []

    def test_spawn_loop_without_cleanup_flagged(self):
        # The unguarded shape: Process()/start() raising leaks the pipe.
        findings = lint_file(
            """
            import multiprocessing

            class Pool:
                def spawn(self, ctx, spec):
                    parent_conn, child_conn = ctx.Pipe()
                    proc = ctx.Process(target=run, args=(child_conn, spec))
                    proc.start()
                    child_conn.close()
                    self._conns.append(parent_conn)
            """,
            rules={"resource-release"},
        )
        assert rules_of(findings) == ["resource-release"]
        assert "parent_conn" in findings[0].message

    def test_guarded_spawn_with_ownership_transfer_passes(self):
        findings = lint_file(
            """
            import multiprocessing

            class Pool:
                def spawn(self, ctx, spec):
                    parent_conn, child_conn = ctx.Pipe()
                    try:
                        proc = ctx.Process(target=run, args=(child_conn, spec))
                        proc.start()
                    except BaseException:
                        parent_conn.close()
                        child_conn.close()
                        raise
                    child_conn.close()
                    self._conns.append(parent_conn)
            """,
            rules={"resource-release"},
        )
        assert findings == []

    def test_connection_lock_release_through_chain_passes(self):
        findings = lint_file(
            """
            class Client:
                def call(self, request):
                    conn = self._acquire()
                    try:
                        return conn.round_trip(request)
                    finally:
                        conn.lock.release()
            """,
            rules={"resource-release"},
        )
        assert findings == []

    def test_acquired_lock_leak_flagged(self):
        findings = lint_file(
            """
            class Client:
                def call(self, request):
                    conn = self._acquire()
                    return conn.round_trip(request)
            """,
            rules={"resource-release"},
        )
        assert rules_of(findings) == ["resource-release"]

    def test_tokenizer_accept_not_a_socket(self):
        # Dotted config keys: the SQL parser's self.accept() is unrelated.
        findings = lint_file(
            """
            class Parser:
                def parse(self):
                    token = self.accept("ident")
                    return token
            """,
            rules={"resource-release"},
        )
        assert findings == []


# ----------------------------------------------------------------------
# rpc-arity
# ----------------------------------------------------------------------
class TestRpcArity:
    SERVER = """
    def _dispatch(self, decoded):
        kind, body = decoded[0], decoded[1]
        if kind == "plan_many":
            queries, options = body
            return queries
        if kind == "execute":
            query, plan, timeout_ms, use_cache = body
            return query
        if kind == "ping":
            return "pong"
        if kind == "hint_many":
            return list(body)
    """

    def _check(self, client_source, server_source=SERVER):
        config = LintConfig(
            rpc_server="src/repro/engine/remote/server.py",
            rpc_client="src/repro/engine/remote/client.py",
        )
        project = fixture_project(
            {
                config.rpc_server: server_source,
                config.rpc_client: client_source,
            },
            config,
        )
        return list(RULES["rpc-arity"].check(project))

    def test_matched_shapes_pass(self):
        findings = self._check(
            """
            class C:
                def plan_many(self, qs, opts):
                    return self._call("plan_many", (qs, opts))
                def execute(self, q, plan, t):
                    return self._call("execute", (q, plan, t, False))
                def ping(self):
                    return self._call("ping", None)
                def hint_many(self, reqs):
                    return self._call("hint_many", reqs)
            """
        )
        assert findings == []

    def test_tuple_arity_mismatch_flagged(self):
        findings = self._check(
            """
            class C:
                def execute(self, q, plan, t):
                    return self._call("execute", (q, plan, t))
            """
        )
        assert rules_of(findings) == ["rpc-arity"]
        assert "3-tuple" in findings[0].message and "4-tuple" in findings[0].message

    def test_none_payload_into_destructuring_branch_flagged(self):
        findings = self._check(
            """
            class C:
                def plan_many(self):
                    return self._call("plan_many", None)
            """
        )
        assert rules_of(findings) == ["rpc-arity"]

    def test_opaque_payload_is_skipped(self):
        findings = self._check(
            """
            class C:
                def plan_many(self, payload):
                    return self._call("plan_many", payload)
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# incremental CLI: --since, --cache, SARIF
# ----------------------------------------------------------------------
class TestIncrementalCli:
    def _seed(self, tmp_path, dirty=True):
        target = tmp_path / "src" / "repro" / "optimizer"
        target.mkdir(parents=True)
        body = "return hash(key) % 8" if dirty else "return len(key) % 8"
        (target / "mod.py").write_text(
            f"def bucket(key):\n    {body}\n", encoding="utf-8"
        )
        return target / "mod.py"

    def test_changed_files_in_a_real_checkout(self):
        changed = changed_files(REPO_ROOT, "HEAD")
        assert changed is not None  # the repo under test is a git checkout

    def test_changed_files_outside_git_degrades(self, tmp_path):
        assert changed_files(tmp_path, "HEAD") is None

    def test_restrict_limits_file_rules(self, tmp_path):
        self._seed(tmp_path)
        config = LintConfig()
        _, dirty, _ = run_lint(tmp_path, config, ["src"], only_rules={"det-hash"})
        assert [f.rule for f, _ in dirty] == ["det-hash"]
        _, restricted, _ = run_lint(
            tmp_path, config, ["src"], only_rules={"det-hash"}, restrict=set()
        )
        assert restricted == []

    def test_since_falls_back_outside_git(self, tmp_path, capsys):
        self._seed(tmp_path)
        code = main(
            [
                "--project-root",
                str(tmp_path),
                "--since",
                "HEAD",
                "--no-baseline",
                "--rules",
                "det-hash",
                "src",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1  # fell back to the full run and found det-hash
        assert "falling back" in captured.err

    def test_cache_round_trip_and_invalidation(self, tmp_path, capsys):
        mod = self._seed(tmp_path)
        base = [
            "--project-root",
            str(tmp_path),
            "--no-baseline",
            "--cache",
            "--rules",
            "det-hash",
            "src",
        ]
        assert main(base) == 1
        cache_file = tmp_path / ".repro-lint-cache.json"
        assert cache_file.is_file()
        capsys.readouterr()
        # Warm run: same verdict served from the cache.
        assert main(base) == 1
        first = capsys.readouterr().out
        assert "det-hash" in first
        # Editing the file invalidates its entry.
        mod.write_text("def bucket(key):\n    return len(key) % 8\n", encoding="utf-8")
        assert main(base) == 0

    def test_cache_salt_invalidates_on_config_change(self, tmp_path):
        from repro.analysis.cache import ResultCache, config_salt

        salt_a = config_salt(LintConfig(), ("r1",))
        salt_b = config_salt(LintConfig(baseline="other.json"), ("r1",))
        salt_c = config_salt(LintConfig(), ("r1", "r2"))
        assert len({salt_a, salt_b, salt_c}) == 3
        # A cache written under one salt is ignored under another.
        path = tmp_path / "cache.json"
        cache = ResultCache(path, salt_a)
        cache.put("src/x.py", "aa", [], [], 0)
        cache.save()
        reloaded = ResultCache.load(path, LintConfig(baseline="other.json"), ("r1",))
        assert reloaded.entries == {}

    def test_sarif_output_shape(self, tmp_path, capsys):
        self._seed(tmp_path)
        code = main(
            [
                "--project-root",
                str(tmp_path),
                "--no-baseline",
                "--rules",
                "det-hash",
                "--format",
                "sarif",
                "src",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        result = run["results"][0]
        assert result["ruleId"] == "det-hash"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/optimizer/mod.py"
        assert location["region"]["startLine"] == 2
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "det-hash" in rule_ids

    def test_json_alias_still_works(self, tmp_path, capsys):
        self._seed(tmp_path)
        code = main(
            [
                "--project-root",
                str(tmp_path),
                "--no-baseline",
                "--rules",
                "det-hash",
                "--json",
                "src",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["findings"][0]["rule"] == "det-hash"


# ----------------------------------------------------------------------
# meta: the real tree under the flow rules
# ----------------------------------------------------------------------
class TestRealTreeFlow:
    def test_real_tree_clean_under_flow_rules(self):
        code = main(
            [
                "--project-root",
                str(REPO_ROOT),
                "--rules",
                "lock-order,ctx-propagation,resource-release,rpc-arity",
                "src",
            ]
        )
        assert code == 0

    def test_real_pool_locks_have_no_cycle(self):
        # The acceptance check spelled out in the issue: the lock graph
        # over the real OptimizerService / ServiceGroup / ShardedBackend /
        # RemoteBackend code has no cross-lock cycle.
        project = Project(REPO_ROOT, LintConfig())
        findings = list(RULES["lock-order"].check(project))
        assert findings == []
