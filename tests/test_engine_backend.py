"""EngineBackend protocol: conformance, batch mirrors, cache contracts.

Covers the engine-level contracts the training loop relies on:

* the dynamic-timeout path — a cached latency above a requested timeout is
  reported as a timeout *without* re-running, and ``Database.executions``
  counts only cache misses;
* LRU eviction of the hint cache (a hot loop keeps its working set; the
  cache no longer drops wholesale at the capacity cliff);
* batch APIs (``plan_many`` / ``plan_with_hints_many`` / ``execute_many``)
  return exactly what their singleton counterparts return;
* ``WorkloadSpec`` rebuilds a bitwise-identical engine (the property the
  sharded backend's workers depend on).
"""

import pytest

from repro.core.icp import IncompletePlan
from repro.engine.backend import EngineBackend, LocalBackend, ShardedBackend, make_backend
from repro.engine.database import Database
from repro.optimizer.plans import plan_signature
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.job import build_job_dataset


@pytest.fixture(scope="module")
def tiny_db():
    """A small private engine (tests mutate caches and counters)."""
    return Database(build_job_dataset(scale=0.02, seed=5))


@pytest.fixture(scope="module")
def bound_query(tiny_db):
    return tiny_db.sql(
        "SELECT COUNT(*) FROM title AS t, movie_info AS mi, cast_info AS ci "
        "WHERE mi.movie_id = t.id AND ci.movie_id = t.id;",
        name="backend_q",
    )


class TestProtocolConformance:
    def test_database_satisfies_protocol(self, tiny_db):
        assert isinstance(tiny_db, EngineBackend)

    def test_local_backend_is_a_database(self):
        backend = LocalBackend.from_spec(WorkloadSpec("job", scale=0.02, seed=5))
        assert isinstance(backend, Database)
        assert isinstance(backend, EngineBackend)

    def test_sharded_backend_satisfies_protocol(self, tiny_db):
        spec = WorkloadSpec("job", scale=0.02, seed=5)
        with ShardedBackend(spec, 2, database=tiny_db) as backend:
            assert isinstance(backend, EngineBackend)

    def test_make_backend_requires_spec_for_sharding(self, tiny_db):
        workload = Workload(
            name="x", dataset=tiny_db.dataset, database=tiny_db, train=[], test=[], spec=None
        )
        assert make_backend(workload, 1) is tiny_db
        with pytest.raises(ValueError, match="WorkloadSpec"):
            make_backend(workload, 2)


class TestDynamicTimeout:
    def test_cached_latency_above_timeout_reports_timeout_without_rerun(
        self, tiny_db, bound_query
    ):
        plan = tiny_db.plan(bound_query).plan
        full = tiny_db.execute(bound_query, plan)
        assert full.latency_ms > 0 and not full.timed_out
        executions_before = tiny_db.executions
        capped = tiny_db.execute(bound_query, plan, timeout_ms=full.latency_ms / 2)
        assert capped.timed_out
        assert capped.latency_ms == full.latency_ms / 2
        assert capped.output_rows == 0
        assert tiny_db.executions == executions_before, "timeout served from cache"

    def test_executions_counts_only_cache_misses(self, tiny_db, bound_query):
        plan = tiny_db.plan(bound_query).plan
        tiny_db.execute(bound_query, plan)  # ensure cached
        before = tiny_db.executions
        for _ in range(3):
            tiny_db.execute(bound_query, plan)
        assert tiny_db.executions == before
        # A plan the cache has never seen is a miss and counts once.
        icp = IncompletePlan.extract(plan)
        alt_method = "merge" if icp.methods[0] != "merge" else "nestloop"
        alt = tiny_db.plan_with_hints(
            bound_query, icp.order, (alt_method,) + tuple(icp.methods[1:])
        ).plan
        assert plan_signature(alt) != plan_signature(plan)
        tiny_db.execute(bound_query, alt)
        assert tiny_db.executions == before + 1
        tiny_db.execute(bound_query, alt)
        assert tiny_db.executions == before + 1

    def test_uncached_execution_always_runs(self, tiny_db, bound_query):
        plan = tiny_db.plan(bound_query).plan
        tiny_db.execute(bound_query, plan)
        before = tiny_db.executions
        tiny_db.execute(bound_query, plan, use_cache=False)
        assert tiny_db.executions == before + 1


class TestHintCacheLRU:
    def _variants(self, db, query, count):
        icp = IncompletePlan.extract(db.plan(query).plan)
        variants = []
        for position in range(1, len(icp.methods) + 1):
            for method in ("hash", "merge", "nestloop"):
                if icp.methods[position - 1] == method:
                    continue
                edited = icp.override(position, method)
                variants.append((edited.order, edited.methods))
                if len(variants) == count:
                    return variants
        raise AssertionError("query too small for the requested variant count")

    def test_lru_keeps_recently_used_entries(self, tiny_db, bound_query):
        tiny_db._hint_cache.clear()
        old_capacity = tiny_db.hint_cache_capacity
        tiny_db.hint_cache_capacity = 3
        try:
            v = self._variants(tiny_db, bound_query, 4)
            for order, methods in v[:3]:
                tiny_db.plan_with_hints(bound_query, order, methods)
            assert len(tiny_db._hint_cache) == 3
            first_key = (bound_query.signature(), tuple(v[0][0]), tuple(v[0][1]))
            second_key = (bound_query.signature(), tuple(v[1][0]), tuple(v[1][1]))
            # Touch the oldest entry, then overflow: the LRU victim must be
            # the *second* entry, not the freshly-touched first.
            tiny_db.plan_with_hints(bound_query, v[0][0], v[0][1])
            tiny_db.plan_with_hints(bound_query, v[3][0], v[3][1])
            assert len(tiny_db._hint_cache) == 3
            assert first_key in tiny_db._hint_cache
            assert second_key not in tiny_db._hint_cache
        finally:
            tiny_db.hint_cache_capacity = old_capacity
            tiny_db._hint_cache.clear()

    def test_capacity_never_exceeded(self, tiny_db, bound_query):
        tiny_db._hint_cache.clear()
        old_capacity = tiny_db.hint_cache_capacity
        tiny_db.hint_cache_capacity = 2
        try:
            for order, methods in self._variants(tiny_db, bound_query, 4):
                tiny_db.plan_with_hints(bound_query, order, methods)
                assert len(tiny_db._hint_cache) <= 2
        finally:
            tiny_db.hint_cache_capacity = old_capacity
            tiny_db._hint_cache.clear()


class TestBatchMirrors:
    def test_plan_many_matches_plan(self, tiny_db, bound_query):
        singles = [tiny_db.plan(bound_query)]
        batch = tiny_db.plan_many([bound_query])
        assert plan_signature(batch[0].plan) == plan_signature(singles[0].plan)

    def test_plan_with_hints_many_matches_singletons(self, tiny_db, bound_query):
        icp = IncompletePlan.extract(tiny_db.plan(bound_query).plan)
        edited = icp.override(1, "merge" if icp.methods[0] != "merge" else "hash")
        requests = [
            (bound_query, icp.order, icp.methods),
            (bound_query, edited.order, edited.methods),
        ]
        batch = tiny_db.plan_with_hints_many(requests)
        singles = [tiny_db.plan_with_hints(*request) for request in requests]
        assert [plan_signature(r.plan) for r in batch] == [
            plan_signature(r.plan) for r in singles
        ]

    def test_execute_many_matches_execute(self, tiny_db, bound_query):
        plan = tiny_db.plan(bound_query).plan
        single = tiny_db.execute(bound_query, plan)
        half = tiny_db.execute(bound_query, plan, timeout_ms=single.latency_ms / 2)
        batch = tiny_db.execute_many(
            [(bound_query, plan, None), (bound_query, plan, single.latency_ms / 2)]
        )
        assert batch[0] == single
        assert batch[1] == half


class TestWorkloadSpec:
    def test_spec_rebuild_is_deterministic(self):
        spec = WorkloadSpec("job", scale=0.02, seed=5)
        first = spec.build_database()
        second = spec.build_database()
        sql = (
            "SELECT COUNT(*) FROM title AS t, movie_info AS mi "
            "WHERE mi.movie_id = t.id AND t.kind_id = 2;"
        )
        q1, q2 = first.sql(sql, name="spec_q"), second.sql(sql, name="spec_q")
        p1, p2 = first.plan(q1).plan, second.plan(q2).plan
        assert plan_signature(p1) == plan_signature(p2)
        assert first.execute(q1, p1).latency_ms == second.execute(q2, p2).latency_ms

    def test_spec_is_picklable(self):
        import pickle

        spec = WorkloadSpec("stack", scale=0.5, seed=9)
        assert pickle.loads(pickle.dumps(spec)) == spec
