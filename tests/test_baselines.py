"""Baseline optimizer tests (Bao, HybridQO, Balsa, Loger, PostgreSQL)."""

import numpy as np
import pytest

from repro.baselines.balsa import BalsaOptimizer
from repro.baselines.bao import DEFAULT_HINT_SETS, BaoOptimizer
from repro.baselines.hybridqo import HybridQOOptimizer
from repro.baselines.loger import LogerOptimizer
from repro.baselines.postgres import PostgresOptimizer
from repro.baselines.value_model import PlanFeaturizer, ValueModel
from repro.core.icp import IncompletePlan
from repro.optimizer.plans import plan_join_methods, plan_signature


@pytest.fixture(scope="module")
def env(request):
    workload = request.getfixturevalue("job_workload")
    return workload, workload.database


class TestValueModel:
    def test_featurizer_fixed_dim(self, env):
        workload, db = env
        featurizer = PlanFeaturizer(db.schema)
        for wq in workload.all_queries[:5]:
            plan = db.plan(wq.query).plan
            features = featurizer.featurize(wq.query, plan)
            assert features.shape == (featurizer.dim,)
            assert np.isfinite(features).all()

    def test_learns_latency_ordering(self, env):
        workload, db = env
        featurizer = PlanFeaturizer(db.schema)
        model = ValueModel(featurizer.dim, rng=np.random.default_rng(0))
        samples = []
        for wq in workload.train[:25]:
            plan = db.plan(wq.query).plan
            latency = db.execute(wq.query, plan).latency_ms
            features = featurizer.featurize(wq.query, plan)
            model.add_sample(features, latency)
            samples.append((features, latency))
        model.fit(epochs=60)
        # Predictions must correlate with targets (Spearman-ish sanity).
        predicted = np.array([model.predict(f) for f, _ in samples])
        actual = np.array([l for _, l in samples])
        rank_corr = np.corrcoef(np.argsort(np.argsort(predicted)), np.argsort(np.argsort(actual)))[0, 1]
        assert rank_corr > 0.3

    def test_untrained_flag(self):
        model = ValueModel(4)
        assert not model.trained
        model.add_sample(np.zeros(4), 5.0)
        model.fit(epochs=1)
        assert model.trained


class TestPostgres:
    def test_returns_expert_plan(self, env):
        workload, db = env
        optimizer = PostgresOptimizer(db)
        wq = workload.all_queries[0]
        chosen = optimizer.optimize(wq.query)
        assert plan_signature(chosen.plan) == plan_signature(db.plan(wq.query).plan)


class TestBao:
    def test_candidates_respect_hint_sets(self, env):
        workload, db = env
        bao = BaoOptimizer(db)
        query = next(w.query for w in workload.all_queries if w.query.num_tables >= 4)
        plans = bao._candidates(query)
        assert len(plans) == len(DEFAULT_HINT_SETS)
        for plan, disabled in zip(plans, DEFAULT_HINT_SETS):
            used = set(plan_join_methods(plan))
            assert not (used & disabled)

    def test_untrained_picks_expert_default(self, env):
        workload, db = env
        bao = BaoOptimizer(db)
        wq = workload.all_queries[0]
        chosen = bao.optimize(wq.query)
        assert plan_signature(chosen.plan) == plan_signature(db.plan(wq.query).plan)

    def test_training_enables_value_model(self, env):
        workload, db = env
        bao = BaoOptimizer(db, seed=1)
        bao.train(workload.train[:8], iterations=1, refit_epochs=5)
        assert bao.value_model.trained
        assert bao.training_time_s > 0
        chosen = bao.optimize(workload.test[0].query)
        assert chosen.candidates_considered == len(DEFAULT_HINT_SETS)


class TestHybridQO:
    def test_prefixes_are_valid(self, env):
        workload, db = env
        hybrid = HybridQOOptimizer(db, mcts_budget=10)
        query = next(w.query for w in workload.all_queries if w.query.num_tables >= 4)
        prefixes = hybrid._search_prefixes(query)
        assert prefixes
        for prefix in prefixes:
            assert len(set(prefix)) == len(prefix)
            assert set(prefix) <= set(query.aliases)

    def test_optimize_returns_plan(self, env):
        workload, db = env
        hybrid = HybridQOOptimizer(db, mcts_budget=10)
        wq = workload.all_queries[1]
        chosen = hybrid.optimize(wq.query)
        assert chosen.candidates_considered >= 1
        result = db.execute(wq.query, chosen.plan)
        assert result.latency_ms > 0


class TestBalsa:
    def test_construct_covers_all_tables(self, env):
        workload, db = env
        balsa = BalsaOptimizer(db)
        query = next(w.query for w in workload.all_queries if w.query.num_tables >= 5)
        plan = balsa._construct(query)
        assert sorted(IncompletePlan.extract(plan).order) == sorted(query.aliases)

    def test_bootstrap_uses_cost_model(self, env):
        workload, db = env
        balsa = BalsaOptimizer(db, seed=2)
        balsa.bootstrap_from_cost_model(workload.train[:5], samples_per_query=2)
        assert balsa.value_model.trained
        assert balsa.value_model.num_samples == 10

    def test_optimize_executes(self, env):
        workload, db = env
        balsa = BalsaOptimizer(db, seed=3)
        wq = workload.all_queries[2]
        chosen = balsa.optimize(wq.query)
        result = db.execute(wq.query, chosen.plan)
        assert result.output_rows >= 0


class TestLoger:
    def test_construct_covers_all_tables(self, env):
        workload, db = env
        loger = LogerOptimizer(db)
        query = next(w.query for w in workload.all_queries if w.query.num_tables >= 5)
        plan = loger._construct(query)
        assert sorted(IncompletePlan.extract(plan).order) == sorted(query.aliases)

    def test_faster_optimization_than_bao(self, env):
        """Loger skips the expert DP, so its optimize() is cheaper (Fig. 6)."""
        workload, db = env
        loger = LogerOptimizer(db)
        bao = BaoOptimizer(db)
        query = next(w.query for w in workload.all_queries if w.query.num_tables >= 8)
        db.clear_caches()
        loger_ms = loger.optimize(query).optimization_ms
        db.clear_caches()
        bao_ms = bao.optimize(query).optimization_ms
        assert loger_ms < bao_ms

    def test_training_records_time(self, env):
        workload, db = env
        loger = LogerOptimizer(db, seed=4)
        loger.train(workload.train[:6], iterations=1)
        assert loger.training_time_s > 0
        assert loger.value_model.trained
