"""AAM tests: state network, pairwise head, asymmetric loss, training."""

import numpy as np
import pytest

from repro.core.aam import (
    AAMConfig,
    AAMSample,
    AAMTrainer,
    AdvantageModel,
    StateNetwork,
    asymmetric_loss,
)
from repro.core.encoding import PlanEncoder
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def setup(request):
    workload = request.getfixturevalue("job_workload")
    db = workload.database
    encoder = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
    config = AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=2)
    rng = np.random.default_rng(5)
    model = AdvantageModel(encoder.num_tables, encoder.num_columns, 40, config=config, rng=rng)
    queries = [w for w in workload.all_queries if w.query.num_tables >= 3][:6]
    encoded = [(w.query, encoder.encode(w.query, db.plan(w.query).plan)) for w in queries]
    return workload, db, encoder, model, encoded


class TestStateNetwork:
    def test_statevec_shape(self, setup):
        _, _, _, model, encoded = setup
        vec = model.state_network.statevec(encoded[0][1], 0.5)
        assert vec.shape == (32,)

    def test_batch_matches_single(self, setup):
        _, _, _, model, encoded = setup
        plans = [e for _, e in encoded[:3]]
        steps = np.array([0.0, 0.5, 1.0])
        batch = model.state_network(plans, steps).data
        single = model.state_network.statevec(plans[1], 0.5)
        np.testing.assert_allclose(batch[1], single, atol=1e-10)

    def test_step_changes_statevec(self, setup):
        _, _, _, model, encoded = setup
        a = model.state_network.statevec(encoded[0][1], 0.0)
        b = model.state_network.statevec(encoded[0][1], 1.0)
        assert not np.allclose(a, b)

    def test_different_plans_different_statevec(self, setup):
        _, _, _, model, encoded = setup
        a = model.state_network.statevec(encoded[0][1], 0.0)
        b = model.state_network.statevec(encoded[1][1], 0.0)
        assert not np.allclose(a, b)


class TestAdvantageModelHead:
    def test_logits_shape(self, setup):
        _, _, _, model, encoded = setup
        plans = [e for _, e in encoded[:2]]
        logits = model(plans, np.zeros(2), plans, np.ones(2))
        assert logits.shape == (2, 3)

    def test_position_awareness(self, setup):
        """Swapping the pair must change the logits (asymmetric model)."""
        _, _, _, model, encoded = setup
        a, b = encoded[0][1], encoded[1][1]
        fwd = model([a], np.zeros(1), [b], np.zeros(1)).data
        rev = model([b], np.zeros(1), [a], np.zeros(1)).data
        assert not np.allclose(fwd, rev)

    def test_predict_score_in_range(self, setup):
        _, _, _, model, encoded = setup
        score = model.predict_score(encoded[0][1], 0.0, encoded[1][1], 0.3)
        assert score in (0, 1, 2)


class TestAsymmetricLoss:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0, -10.0]]))
        good = asymmetric_loss(logits, np.array([0]), 1.0, 4.0, 0.1)
        bad = asymmetric_loss(logits, np.array([2]), 1.0, 4.0, 0.1)
        assert good.item() < bad.item()

    def test_focal_downweights_easy_negatives(self):
        """Higher gamma- shrinks the loss contribution of easy samples."""
        logits = Tensor(np.array([[3.0, 0.0, 0.0]]))
        mild = asymmetric_loss(logits, np.array([0]), 0.0, 0.0, 0.0)
        focal = asymmetric_loss(logits, np.array([0]), 1.0, 4.0, 0.0)
        assert focal.item() < mild.item()

    def test_gradient_flows(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((4, 3)), requires_grad=True)
        loss = asymmetric_loss(logits, np.array([0, 1, 2, 0]), 1.0, 4.0, 0.1)
        loss.backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()

    def test_label_smoothing_penalizes_overconfidence(self):
        confident = Tensor(np.array([[50.0, -50.0, -50.0]]))
        calibrated = Tensor(np.array([[5.0, -2.0, -2.0]]))
        smoothed_conf = asymmetric_loss(confident, np.array([0]), 0.0, 0.0, 0.1)
        smoothed_cal = asymmetric_loss(calibrated, np.array([0]), 0.0, 0.0, 0.1)
        # With smoothing, the extremely confident logits pay on the eps mass.
        assert smoothed_conf.item() > 0.0
        assert np.isfinite(smoothed_cal.item())


class TestAAMTraining:
    def test_learns_synthetic_ordering(self, setup):
        """The AAM must learn a pairwise rule separable by its inputs: here,
        'plan encodings with more nestloop ops are worse'."""
        _, db, encoder, _, encoded = setup
        rng = np.random.default_rng(3)
        config = AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=6, lr=2e-3)
        model = AdvantageModel(encoder.num_tables, encoder.num_columns, 40, config=config, rng=rng)
        trainer = AAMTrainer(model, rng=rng)
        # Two distinct plans per query: label depends on which side is which.
        samples = []
        for query, enc in encoded:
            other = encoded[0][1] if enc is not encoded[0][1] else encoded[1][1]
            samples.append(AAMSample(left=enc, left_step=0.0, right=other, right_step=0.5, label=2))
            samples.append(AAMSample(left=other, left_step=0.5, right=enc, right_step=0.0, label=0))
        metrics = trainer.train(samples * 4)
        assert metrics["accuracy"] >= 0.75

    def test_empty_training_is_noop(self, setup):
        _, _, encoder, model, _ = setup
        trainer = AAMTrainer(model, rng=np.random.default_rng(0))
        metrics = trainer.train([])
        assert metrics["batches"] == 0

    def test_evaluate_range(self, setup):
        _, _, _, model, encoded = setup
        trainer = AAMTrainer(model, rng=np.random.default_rng(0))
        samples = [
            AAMSample(left=encoded[0][1], left_step=0.0, right=encoded[1][1], right_step=0.0, label=0)
        ]
        assert 0.0 <= trainer.evaluate(samples) <= 1.0
