"""Model persistence tests: save/load trained FOSS weights."""

import numpy as np
import pytest

from repro.core.aam import AAMConfig
from repro.core.persistence import load_trainer, save_trainer
from repro.core.trainer import FossConfig, FossTrainer
from repro.optimizer.plans import plan_signature


def tiny_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=8,
        bootstrap_episodes=6,
        aam_retrain_threshold=40,
        random_sample_episodes=1,
        validation_budget=5,
        seed=33,
        aam=AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=1),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


class TestPersistence:
    def test_roundtrip_preserves_inference(self, job_workload, tmp_path):
        trainer = FossTrainer(job_workload, tiny_config())
        trainer.bootstrap()
        query = job_workload.test[0].query
        before = trainer.make_optimizer().optimize(query)

        save_trainer(trainer, str(tmp_path / "ckpt"))

        fresh = FossTrainer(job_workload, tiny_config(seed=99))
        load_trainer(fresh, str(tmp_path / "ckpt"))
        after = fresh.make_optimizer().optimize(query)
        assert plan_signature(after.plan) == plan_signature(before.plan)

    def test_roundtrip_preserves_aam_scores(self, job_workload, tmp_path):
        trainer = FossTrainer(job_workload, tiny_config())
        trainer.bootstrap()
        db = job_workload.database
        wq = job_workload.train[0]
        encoded = trainer.encoder.encode(wq.query, db.plan(wq.query).plan)
        before = trainer.aam.predict_score(encoded, 0.0, encoded, 0.5)

        save_trainer(trainer, str(tmp_path / "ckpt"))
        fresh = FossTrainer(job_workload, tiny_config(seed=55))
        load_trainer(fresh, str(tmp_path / "ckpt"))
        after = fresh.aam.predict_score(encoded, 0.0, encoded, 0.5)
        assert before == after

    def test_agent_count_mismatch_raises(self, job_workload, tmp_path):
        trainer = FossTrainer(job_workload, tiny_config())
        trainer.bootstrap()
        save_trainer(trainer, str(tmp_path / "ckpt"))
        two_agents = FossTrainer(job_workload, tiny_config(num_agents=2))
        with pytest.raises(ValueError):
            load_trainer(two_agents, str(tmp_path / "ckpt"))

    def test_max_steps_mismatch_raises(self, job_workload, tmp_path):
        trainer = FossTrainer(job_workload, tiny_config())
        trainer.bootstrap()
        save_trainer(trainer, str(tmp_path / "ckpt"))
        other = FossTrainer(job_workload, tiny_config(max_steps=4))
        with pytest.raises(ValueError):
            load_trainer(other, str(tmp_path / "ckpt"))

    def test_manifest_written(self, job_workload, tmp_path):
        import json
        import os

        trainer = FossTrainer(job_workload, tiny_config())
        trainer.bootstrap()
        save_trainer(trainer, str(tmp_path / "ckpt"))
        with open(os.path.join(str(tmp_path / "ckpt"), "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["workload"] == "job"
        assert manifest["num_agents"] == 1
