"""RL component tests: GAE, rollout buffer, masked policy, PPO learning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor
from repro.core.buffer import RolloutBuffer, Transition
from repro.rl.gae import compute_gae
from repro.rl.policy import ActorCritic, CategoricalMasked
from repro.rl.ppo import PPOConfig, PPOTrainer


class TestGAE:
    def test_single_step_episode(self):
        adv, ret = compute_gae(np.array([1.0]), np.array([0.0]), np.array([1.0]))
        assert adv[0] == pytest.approx(1.0)
        assert ret[0] == pytest.approx(1.0)

    def test_no_bootstrap_across_done(self):
        rewards = np.array([1.0, 1.0])
        values = np.array([0.0, 0.0])
        dones = np.array([1.0, 1.0])
        adv, _ = compute_gae(rewards, values, dones, gamma=0.9, lam=0.9)
        np.testing.assert_allclose(adv, [1.0, 1.0])

    def test_bootstrap_uses_last_value(self):
        adv, _ = compute_gae(np.array([0.0]), np.array([0.0]), np.array([0.0]),
                             last_value=10.0, gamma=0.5, lam=1.0)
        assert adv[0] == pytest.approx(5.0)

    def test_matches_discounted_return_when_lambda_1(self):
        rewards = np.array([1.0, 1.0, 1.0])
        values = np.zeros(3)
        dones = np.array([0.0, 0.0, 1.0])
        _, returns = compute_gae(rewards, values, dones, gamma=0.5, lam=1.0)
        assert returns[0] == pytest.approx(1 + 0.5 + 0.25)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            compute_gae(np.ones(2), np.ones(3), np.ones(2))


class TestRolloutBuffer:
    def _transition(self, reward=1.0, done=True):
        return Transition(
            state=np.zeros(3), action=0, reward=reward, done=done,
            value=0.0, log_prob=-0.5, action_mask=np.ones(2, dtype=bool),
        )

    def test_finalize_empty_raises(self):
        with pytest.raises(ValueError):
            RolloutBuffer().finalize()

    def test_finalize_shapes(self):
        buffer = RolloutBuffer()
        for _ in range(5):
            buffer.add(self._transition())
        batch = buffer.finalize()
        assert batch.states.shape == (5, 3)
        assert batch.action_masks.shape == (5, 2)

    def test_minibatch_iteration_covers_all(self):
        buffer = RolloutBuffer()
        for i in range(10):
            buffer.add(self._transition(reward=float(i)))
        batch = buffer.finalize()
        seen = 0
        for mini in RolloutBuffer.iter_minibatches(batch, 3, np.random.default_rng(0)):
            seen += len(mini.actions)
        assert seen == 10

    def test_advantage_normalization(self):
        buffer = RolloutBuffer()
        for i in range(8):
            buffer.add(self._transition(reward=float(i)))
        batch = buffer.finalize()
        minis = list(RolloutBuffer.iter_minibatches(batch, 8, np.random.default_rng(0)))
        assert abs(minis[0].advantages.mean()) < 1e-8


class TestCategoricalMasked:
    def test_masked_actions_never_sampled(self):
        rng = np.random.default_rng(0)
        logits = Tensor(np.zeros((1, 4)))
        mask = np.array([[True, False, True, False]])
        dist = CategoricalMasked(logits, mask)
        samples = {int(dist.sample(rng)[0]) for _ in range(100)}
        assert samples <= {0, 2}

    def test_all_masked_raises(self):
        with pytest.raises(ValueError):
            CategoricalMasked(Tensor(np.zeros((1, 3))), np.zeros((1, 3), dtype=bool))

    def test_mode_respects_mask(self):
        logits = Tensor(np.array([[100.0, 0.0]]))
        dist = CategoricalMasked(logits, np.array([[False, True]]))
        assert dist.mode()[0] == 1

    def test_entropy_uniform(self):
        dist = CategoricalMasked(Tensor(np.zeros((1, 4))))
        assert dist.entropy().data[0] == pytest.approx(np.log(4))

    def test_log_prob_consistent(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]))
        dist = CategoricalMasked(logits)
        total = np.exp(dist.log_probs.data).sum()
        assert total == pytest.approx(1.0)


class TestActorCritic:
    def test_act_deterministic_stable(self):
        rng = np.random.default_rng(0)
        policy = ActorCritic(4, 6, hidden_sizes=(16,), rng=rng)
        mask = np.ones(6, dtype=bool)
        a1, _, _ = policy.act(np.ones(4), mask, rng, deterministic=True)
        a2, _, _ = policy.act(np.ones(4), mask, rng, deterministic=True)
        assert a1 == a2

    def test_act_respects_mask(self):
        rng = np.random.default_rng(0)
        policy = ActorCritic(4, 6, hidden_sizes=(16,), rng=rng)
        mask = np.zeros(6, dtype=bool)
        mask[3] = True
        for _ in range(20):
            action, _, _ = policy.act(np.ones(4), mask, rng)
            assert action == 3

    def test_value_scalar(self):
        policy = ActorCritic(4, 6, rng=np.random.default_rng(1))
        assert isinstance(policy.value(np.ones(4)), float)


class TestPPOLearning:
    def test_contextual_bandit(self):
        """PPO must learn a state-dependent optimal action."""
        rng = np.random.default_rng(0)
        policy = ActorCritic(2, 2, hidden_sizes=(32,), rng=rng)
        trainer = PPOTrainer(policy, PPOConfig(lr=5e-3, epochs=4, minibatch_size=32), rng=rng)
        mask = np.ones(2, dtype=bool)
        for _ in range(25):
            buffer = trainer.make_buffer()
            for _ in range(64):
                context = int(rng.integers(2))
                state = np.eye(2)[context]
                action, log_prob, value = policy.act(state, mask, rng)
                reward = 1.0 if action == context else 0.0
                buffer.add(Transition(state, action, reward, True, value, log_prob, mask))
            trainer.update(buffer.finalize())
        for context in (0, 1):
            action, _, _ = policy.act(np.eye(2)[context], mask, rng, deterministic=True)
            assert action == context

    def test_kl_early_stop_reports(self):
        rng = np.random.default_rng(0)
        policy = ActorCritic(2, 2, hidden_sizes=(8,), rng=rng)
        trainer = PPOTrainer(policy, PPOConfig(lr=0.5, epochs=10, minibatch_size=8, target_kl=1e-4), rng=rng)
        buffer = trainer.make_buffer()
        mask = np.ones(2, dtype=bool)
        for _ in range(32):
            action, log_prob, value = policy.act(np.ones(2), mask, rng)
            buffer.add(Transition(np.ones(2), action, rng.random(), True, value, log_prob, mask))
        stats = trainer.update(buffer.finalize())
        # The huge lr should trip the KL guard before all epochs finish.
        assert stats["updates"] < 10 * 4


@settings(max_examples=30, deadline=None)
@given(
    gamma=st.floats(min_value=0.5, max_value=0.999),
    rewards=st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=12),
)
def test_gae_zero_when_values_perfect(gamma, rewards):
    """If values equal the true returns, advantages vanish (lam=1)."""
    rewards = np.array(rewards)
    n = len(rewards)
    dones = np.zeros(n)
    dones[-1] = 1.0
    returns = np.zeros(n)
    acc = 0.0
    for i in range(n - 1, -1, -1):
        acc = rewards[i] + gamma * acc
        returns[i] = acc
    adv, _ = compute_gae(rewards, returns, dones, gamma=gamma, lam=1.0)
    np.testing.assert_allclose(adv, 0.0, atol=1e-9)
