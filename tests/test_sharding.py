"""Sharded engine backend: RPC parity, worker-count trajectory invariance.

The contract (see :mod:`repro.engine.backend`): the engine is a pure
function of the dataset, and workers rebuild the dataset from the same
:class:`WorkloadSpec` — so plans, latencies, trajectories and training
metrics are identical for every ``engine_workers`` at a fixed seed.
"""

import pytest

from repro.core.aam import AAMConfig
from repro.core.icp import IncompletePlan
from repro.core.trainer import FossConfig, FossTrainer
from repro.engine.backend import ShardedBackend
from repro.optimizer.plans import plan_signature


def sharding_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=10,
        bootstrap_episodes=6,
        aam_retrain_threshold=25,
        random_sample_episodes=2,
        validation_budget=8,
        episode_batch_size=4,
        seed=17,
        aam=AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=1),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


def episode_fingerprint(episode):
    return (
        plan_signature(episode.best_plan),
        episode.best_step,
        [c.icp.signature() for c in episode.candidates],
        [t.action for t in episode.transitions],
        [t.reward for t in episode.transitions],
        episode.total_reward,
    )


@pytest.fixture(scope="module")
def parity_queries(job_workload):
    queries = []
    seen = set()
    for wq in job_workload.train:
        if wq.query.num_tables >= 3 and wq.query.signature() not in seen:
            seen.add(wq.query.signature())
            queries.append(wq.query)
        if len(queries) == 6:
            break
    assert len(queries) == 6
    return queries


class TestBackendParity:
    def test_rpc_results_match_local(self, job_workload):
        """plan / complete-hint / execute return bitwise-identical results."""
        local = job_workload.database
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        with ShardedBackend(job_workload.spec, 2, database=local) as backend:
            local_planning = local.plan(query)
            sharded_planning = backend.plan(query)
            assert plan_signature(sharded_planning.plan) == plan_signature(local_planning.plan)

            icp = IncompletePlan.extract(local_planning.plan)
            edited = icp.override(1, "merge" if icp.methods[0] != "merge" else "nestloop")
            requests = [
                (query, icp.order, icp.methods),
                (query, edited.order, edited.methods),
                (query, icp.order, icp.methods),  # repeat: parent memo hit
            ]
            sharded = backend.plan_with_hints_many(requests)
            singles = [local.plan_with_hints(*request) for request in requests]
            assert [plan_signature(r.plan) for r in sharded] == [
                plan_signature(r.plan) for r in singles
            ]

            plans = [planning.plan for planning in singles[:2]]
            local_results = local.execute_many([(query, plan, None) for plan in plans])
            sharded_results = backend.execute_many([(query, plan, None) for plan in plans])
            assert [r.latency_ms for r in sharded_results] == [
                r.latency_ms for r in local_results
            ]

    def test_executions_aggregate_worker_misses(self, job_workload):
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        with ShardedBackend(job_workload.spec, 2, database=job_workload.database) as backend:
            plan = backend.plan(query).plan
            before = backend.executions
            backend.execute(query, plan)
            after_miss = backend.executions
            assert after_miss == before + 1, "worker cache miss must count"
            backend.execute(query, plan)
            assert backend.executions == after_miss, "worker cache hit must not count"
            assert backend.stats()["workers"] == 2

    def test_worker_error_does_not_desync_pool(self, job_workload):
        """A failed RPC drains every pending response; later calls stay aligned."""
        queries = [w.query for w in job_workload.train[:4]]
        with ShardedBackend(job_workload.spec, 2, database=job_workload.database) as backend:
            with pytest.raises(RuntimeError, match="unknown engine RPC"):
                backend._scatter("bogus", list(queries), [q.signature() for q in queries])
            sharded = backend.plan_many(queries)
            local = job_workload.database.plan_many(queries)
            assert [plan_signature(p.plan) for p in sharded] == [
                plan_signature(p.plan) for p in local
            ]

    def test_close_is_idempotent_and_blocks_further_calls(self, job_workload):
        backend = ShardedBackend(job_workload.spec, 2, database=job_workload.database)
        query = job_workload.train[0].query
        backend.plan(query)
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.plan(query)


class TestWorkerCountInvariance:
    def _episodes(self, job_workload, parity_queries, workers, environment_name):
        trainer = FossTrainer(job_workload, sharding_config(engine_workers=workers))
        try:
            environment = trainer.sim_env if environment_name == "sim" else trainer.real_env
            return [
                episode_fingerprint(e)
                for e in trainer.runners[0].run(environment, parity_queries)
            ]
        finally:
            trainer.close()

    def test_simulated_trajectories_identical(self, job_workload, parity_queries):
        baseline = self._episodes(job_workload, parity_queries, 1, "sim")
        for workers in (2, 4):
            assert self._episodes(job_workload, parity_queries, workers, "sim") == baseline, (
                f"engine_workers={workers} diverged from local backend"
            )

    def test_real_trajectories_identical(self, job_workload, parity_queries):
        baseline = self._episodes(job_workload, parity_queries, 1, "real")
        assert self._episodes(job_workload, parity_queries, 2, "real") == baseline

    def test_training_metrics_identical(self, job_workload):
        def run(workers):
            trainer = FossTrainer(job_workload, sharding_config(engine_workers=workers))
            try:
                trainer.bootstrap()
                stats = trainer.run_iteration(0)
                buffer_state = sorted(
                    (query_sig, plan_signature(record.plan), record.latency_ms,
                     record.step, record.timed_out)
                    for query_sig, per_query in trainer.buffer._records.items()
                    for record in per_query.values()
                )
                return (
                    stats.episodes,
                    stats.executions,
                    stats.mean_reward,
                    trainer.aam_accuracy,
                    buffer_state,
                )
            finally:
                trainer.close()

        baseline = run(1)
        for workers in (2, 4):
            assert run(workers) == baseline, f"engine_workers={workers} training diverged"


class TestPoolTeardownSafety:
    """Regression coverage: a wedged or dying client must not leak workers.

    The serving front (and now the remote engine server) can abandon an
    in-flight round trip — a client disconnects mid-request, a serving
    thread dies while holding a worker lock.  close() must still reclaim
    every worker process and pipe, and a partially-failed scatter must
    drain the responses it already provoked so the pool stays aligned.
    """

    def test_close_reclaims_wedged_worker(self, job_workload):
        import time

        backend = ShardedBackend(job_workload.spec, 2, database=job_workload.database)
        backend.close_grace_s = 0.2  # don't burn the real 30s grace in a test
        # Simulate a client thread that died mid-round-trip: worker 0's
        # lock is held forever and will never be released.
        backend._worker_locks[0].acquire()
        start = time.monotonic()
        backend.close()
        elapsed = time.monotonic() - start
        assert elapsed < 15.0, f"close took {elapsed:.1f}s against a wedged worker"
        assert all(not proc.is_alive() for proc in backend._procs), (
            "close must not leak worker processes behind a wedged lock"
        )
        assert all(conn.closed for conn in backend._conns), (
            "close must not leak parent pipe fds behind a wedged lock"
        )

    def test_dead_worker_send_failure_drains_pool(self, job_workload):
        with ShardedBackend(job_workload.spec, 2, database=job_workload.database) as backend:
            by_worker = {0: [], 1: []}
            for wq in job_workload.train:
                by_worker[backend._route(wq.query.signature())].append(wq.query)
            assert by_worker[0] and by_worker[1], "need traffic for both workers"
            # Worker 1 dies mid-deployment (OOM-kill equivalent).
            backend._procs[1].terminate()
            backend._procs[1].join(timeout=10)
            # A scatter touching both workers sends to 0, then fails on 1;
            # the error path must drain worker 0's pending response.
            with pytest.raises(RuntimeError):
                backend.plan_many([by_worker[0][0], by_worker[1][0]])
            # Worker 0 must still be aligned: a fresh request gets ITS
            # response, not the drained call's stale one.
            fresh = by_worker[0][1]
            result = backend.plan_many([fresh])
            local = job_workload.database.plan(fresh)
            assert plan_signature(result[0].plan) == plan_signature(local.plan), (
                "pool desynchronized after a partially-failed scatter"
            )
