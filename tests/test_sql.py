"""SQL frontend tests: lexer, parser, binder, AST helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.sql.ast import Aggregate, ColumnRef, FilterPredicate, JoinPredicate, Query
from repro.sql.binder import BindError, bind_query
from repro.sql.lexer import LexError, tokenize
from repro.sql.parser import ParseError, parse_query
from repro.storage.database import StorageDatabase
from repro.storage.table import Table


@pytest.fixture()
def schema():
    return Schema(
        tables=[
            TableSchema("users", [ColumnSchema("id", is_primary_key=True), ColumnSchema("age")]),
            TableSchema("orders", [ColumnSchema("id", is_primary_key=True), ColumnSchema("user_id"), ColumnSchema("total")]),
        ],
        foreign_keys=[ForeignKey("orders", "user_id", "users", "id")],
    )


@pytest.fixture()
def storage():
    db = StorageDatabase()
    db.add_table(Table.from_arrays("users", {"id": np.arange(5), "age": np.array([20, 30, 40, 50, 60])}))
    db.add_table(
        Table.from_arrays(
            "orders",
            {"id": np.arange(6), "user_id": np.array([0, 0, 1, 2, 3, 4]), "total": np.arange(6) * 10},
        )
    )
    return db


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT COUNT(*) FROM users AS u;")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "KEYWORD"
        assert "SYMBOL" in kinds

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select from")
        assert [t.value for t in tokens] == ["SELECT", "FROM"]

    def test_numbers_including_negative(self):
        tokens = tokenize("1 -2 3.5")
        assert [t.value for t in tokens] == ["1", "-2", "3.5"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].value == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_not_equal_normalized(self):
        tokens = tokenize("a.b != 3")
        assert any(t.value == "<>" for t in tokens)

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a ~ b")


class TestParser:
    def test_single_table(self):
        raw = parse_query("SELECT COUNT(*) FROM users AS u WHERE u.age > 30")
        assert raw.tables == {"u": "users"}
        assert len(raw.filters) == 1
        assert raw.filters[0].op == ">"

    def test_join_and_filters(self):
        raw = parse_query(
            "SELECT COUNT(*) FROM users AS u, orders AS o "
            "WHERE o.user_id = u.id AND u.age <= 40 AND o.total IN (10, 20)"
        )
        assert len(raw.joins) == 1
        assert len(raw.filters) == 2
        assert raw.filters[1].op == "IN"
        assert raw.filters[1].values == (10.0, 20.0)

    def test_between(self):
        raw = parse_query("SELECT COUNT(*) FROM users u WHERE u.age BETWEEN 20 AND 40")
        assert raw.filters[0].op == "BETWEEN"
        assert raw.filters[0].values == (20.0, 40.0)

    def test_alias_without_as(self):
        raw = parse_query("SELECT COUNT(*) FROM users u")
        assert raw.tables == {"u": "users"}

    def test_no_alias_defaults_to_table(self):
        raw = parse_query("SELECT COUNT(*) FROM users")
        assert raw.tables == {"users": "users"}

    def test_multiple_aggregates(self):
        raw = parse_query("SELECT COUNT(*), SUM(u.age), MIN(u.age) FROM users u")
        assert [a.function for a in raw.aggregates] == ["COUNT", "SUM", "MIN"]

    def test_duplicate_alias_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(*) FROM users u, orders u")

    def test_non_equi_column_comparison_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(*) FROM users u, orders o WHERE u.id < o.user_id")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(*) FROM users u extra")

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNT(*) users")


class TestBinder:
    def test_bind_resolves_names(self, schema, storage):
        raw = parse_query(
            "SELECT COUNT(*) FROM users AS u, orders AS o WHERE o.user_id = u.id AND u.age > 25"
        )
        query = bind_query(raw, schema, storage, name="q1")
        assert query.num_tables == 2
        assert query.join_predicates[0].left.column == "user_id"
        assert query.name == "q1"

    def test_unknown_table_raises(self, schema, storage):
        raw = parse_query("SELECT COUNT(*) FROM nope n")
        with pytest.raises(BindError):
            bind_query(raw, schema, storage)

    def test_unknown_column_raises(self, schema, storage):
        raw = parse_query("SELECT COUNT(*) FROM users u WHERE u.nope = 1")
        with pytest.raises(BindError):
            bind_query(raw, schema, storage)

    def test_disconnected_join_graph_raises(self, schema, storage):
        raw = parse_query("SELECT COUNT(*) FROM users u, orders o WHERE u.age > 1")
        with pytest.raises(BindError):
            bind_query(raw, schema, storage)

    def test_self_join_predicate_raises(self, schema, storage):
        raw = parse_query("SELECT COUNT(*) FROM users u, orders o WHERE u.id = u.id AND o.user_id = u.id")
        with pytest.raises(BindError):
            bind_query(raw, schema, storage)


class TestQueryAst:
    def _query(self, schema, storage):
        raw = parse_query(
            "SELECT COUNT(*) FROM users AS u, orders AS o WHERE o.user_id = u.id AND u.age > 25"
        )
        return bind_query(raw, schema, storage)

    def test_join_graph_connected(self, schema, storage):
        query = self._query(schema, storage)
        assert query.is_connected()

    def test_filters_for(self, schema, storage):
        query = self._query(schema, storage)
        assert len(query.filters_for("u")) == 1
        assert query.filters_for("o") == []

    def test_joins_between(self, schema, storage):
        query = self._query(schema, storage)
        assert len(query.joins_between(["u"], ["o"])) == 1
        assert query.joins_between(["u"], ["u"]) == []

    def test_to_sql_round_trips(self, schema, storage):
        query = self._query(schema, storage)
        reparsed = bind_query(parse_query(query.to_sql()), schema, storage)
        assert reparsed.tables == query.tables
        assert len(reparsed.filters) == len(query.filters)

    def test_filter_predicate_validation(self):
        with pytest.raises(ValueError):
            FilterPredicate(ColumnRef("a", "x"), "BETWEEN", (1.0,))
        with pytest.raises(ValueError):
            FilterPredicate(ColumnRef("a", "x"), "=", (1.0, 2.0))
        with pytest.raises(ValueError):
            FilterPredicate(ColumnRef("a", "x"), "LIKE", (1.0,))


@settings(max_examples=40, deadline=None)
@given(
    age=st.integers(min_value=-100, max_value=100),
    op=st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
)
def test_parse_bind_roundtrip_property(age, op):
    """Any simple comparison parses and binds without loss."""
    schema = Schema(
        tables=[TableSchema("users", [ColumnSchema("id", is_primary_key=True), ColumnSchema("age")])]
    )
    raw = parse_query(f"SELECT COUNT(*) FROM users u WHERE u.age {op} {age}")
    query = bind_query(raw, schema)
    assert query.filters[0].op == op
    assert query.filters[0].value == float(age)
