"""Autograd engine tests: gradients checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate, no_grad, randn, stack, where


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        out[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, x0: np.ndarray, atol: float = 1e-5):
    """Compare autograd gradient of build(Tensor) with finite differences."""
    t = Tensor(x0.copy(), requires_grad=True)
    build(t).backward()
    expected = numeric_grad(lambda arr: float(build(Tensor(arr)).data), x0.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 3.0).sum(), np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum(), np.array([1.0, -2.0, 3.0]))

    def test_sub_rsub(self):
        check_gradient(lambda t: (5.0 - t).sum(), np.array([1.0, 2.0]))

    def test_div(self):
        check_gradient(lambda t: (t / 2.0 + 1.0 / t).sum(), np.array([1.0, 2.0, 4.0]))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), np.array([1.0, 2.0, -1.5]))

    def test_exp_log(self):
        check_gradient(lambda t: (t.exp() + (t + 5.0).log()).sum(), np.array([0.3, 1.0]))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), np.array([-1.0, 0.0, 2.0]))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), np.array([-2.0, 0.5]))

    def test_relu_grad_zero_below(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])

    def test_abs(self):
        check_gradient(lambda t: t.abs().sum(), np.array([-3.0, 2.0]))

    def test_clip(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt().sum(), np.array([1.0, 4.0, 9.0]))


class TestMatmulAndShapes:
    def test_matmul_2d(self):
        a = np.random.default_rng(0).standard_normal((3, 4))
        check_gradient(lambda t: (t @ Tensor(np.ones((4, 2)))).sum(), a)

    def test_matmul_batched(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((2, 4, 5))
        x = Tensor(a, requires_grad=True)
        (x @ Tensor(w)).sum().backward()
        expected = numeric_grad(lambda arr: float((arr @ w).sum()), a.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_reshape_roundtrip(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), np.arange(6, dtype=float).reshape(2, 3))

    def test_transpose(self):
        a = np.random.default_rng(2).standard_normal((2, 3))
        check_gradient(lambda t: (t.T @ Tensor(np.ones((2, 1)))).sum(), a)

    def test_getitem(self):
        t = Tensor(np.arange(6, dtype=float), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0, 0.0, 0.0])

    def test_broadcast_add_sums_grad(self):
        bias = Tensor(np.zeros(3), requires_grad=True)
        x = Tensor(np.ones((4, 3)))
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, [4.0, 4.0, 4.0])


class TestReductions:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_mean(self):
        check_gradient(lambda t: (t.mean() * 3.0), np.array([1.0, 2.0, 3.0]))

    def test_max_routes_to_argmax(self):
        t = Tensor(np.array([1.0, 5.0, 2.0]), requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        with no_grad():
            t = Tensor(np.ones(3), requires_grad=True)
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_grad_accumulates_across_backward(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph(self):
        # y = a*b where a = x+1, b = x*2 -> dy/dx = b + 2a = 2x + 2x + 2
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x + 1.0
        b = x * 2.0
        (a * b).backward()
        np.testing.assert_allclose(x.grad, [4 * 3.0 + 2.0])

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad


class TestCombinators:
    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (stack([a, b]) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])

    def test_where_gradient_routes(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        cond = np.array([True, False, True])
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestFunctional:
    def test_softmax_sums_to_one(self):
        logits = Tensor(np.random.default_rng(3).standard_normal((4, 5)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_log_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0]]))
        out = F.log_softmax(logits).data
        assert np.isfinite(out).all()

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, 0.0]]))
        loss = F.cross_entropy(logits, np.array([0]))
        manual = -np.log(np.exp(2.0) / (np.exp(2.0) + 2.0))
        assert abs(loss.item() - manual) < 1e-10

    def test_masked_softmax_zeroes_masked(self):
        logits = Tensor(np.zeros((1, 3)))
        mask = np.array([[True, False, True]])
        probs = F.masked_softmax(logits, mask).data
        assert probs[0, 1] < 1e-6
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_mse_loss_gradcheck(self):
        target = np.array([1.0, 2.0])
        check_gradient(lambda t: F.mse_loss(t, target), np.array([0.5, 1.5]))

    def test_huber_quadratic_inside_linear_outside(self):
        small = F.huber_loss(Tensor(np.array([0.5])), np.array([0.0]), delta=1.0)
        large = F.huber_loss(Tensor(np.array([10.0])), np.array([0.0]), delta=1.0)
        assert abs(small.item() - 0.125) < 1e-12
        assert abs(large.item() - 9.5) < 1e-12

    def test_entropy_uniform_is_log_n(self):
        logits = Tensor(np.zeros((2, 4)))
        entropy = F.entropy_from_logits(logits)
        assert abs(entropy.item() - np.log(4)) < 1e-10


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=6),
)
def test_softmax_invariant_to_shift(values):
    logits = np.array(values)
    a = F.softmax(Tensor(logits[None])).data
    b = F.softmax(Tensor(logits[None] + 100.0)).data
    np.testing.assert_allclose(a, b, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_matmul_shape_property(n, m):
    rng = np.random.default_rng(42)
    a = Tensor(rng.standard_normal((n, m)), requires_grad=True)
    b = Tensor(rng.standard_normal((m, 3)))
    out = a @ b
    assert out.shape == (n, 3)
    out.sum().backward()
    assert a.grad.shape == (n, m)


class TestNoGradThreadIsolation:
    """`no_grad` is a ContextVar: one thread's inference mode must never
    leak into a concurrently training thread."""

    def test_interleaved_threads_keep_independent_grad_modes(self):
        import threading

        from repro.nn.tensor import is_grad_enabled

        barrier = threading.Barrier(2, timeout=10)
        results = {}
        errors = []

        def infer():
            try:
                with no_grad():
                    barrier.wait()  # A: both threads are in their regions
                    t = Tensor(np.ones(3), requires_grad=True)
                    results["infer_taped"] = (t * 2.0).sum().requires_grad
                    results["infer_enabled"] = is_grad_enabled()
                    barrier.wait()  # B: hold no_grad open while trainer runs
                    barrier.wait()  # C: trainer has finished its backward
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
                barrier.abort()

        def train():
            try:
                barrier.wait()  # A
                barrier.wait()  # B: the other thread is *inside* no_grad now
                t = Tensor(np.ones(3), requires_grad=True)
                out = (t * 2.0).sum()
                results["train_taped"] = out.requires_grad
                results["train_enabled"] = is_grad_enabled()
                out.backward()
                results["train_grad"] = None if t.grad is None else t.grad.copy()
                barrier.wait()  # C
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
                barrier.abort()

        threads = [threading.Thread(target=f) for f in (infer, train)]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=30)
        assert not errors, errors
        # The inference thread saw grads off...
        assert results["infer_enabled"] is False
        assert results["infer_taped"] is False
        # ...while the training thread, running concurrently, kept a tape.
        assert results["train_enabled"] is True
        assert results["train_taped"] is True
        np.testing.assert_allclose(results["train_grad"], [2.0, 2.0, 2.0])

    def test_no_grad_restores_mode_after_exception(self):
        from repro.nn.tensor import is_grad_enabled

        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()
