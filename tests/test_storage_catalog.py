"""Storage (tables, indexes) and catalog (schema, stats, datagen) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import datagen
from repro.catalog.schema import ColumnSchema, ForeignKey, Schema, TableSchema
from repro.catalog.statistics import StatisticsCatalog, _analyze_column
from repro.storage.database import StorageDatabase
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.table import Table


class TestTable:
    def test_from_arrays_numeric(self):
        table = Table.from_arrays("t", {"a": np.arange(5), "b": np.arange(5) * 2.0})
        assert table.num_rows == 5
        assert set(table.column_names) == {"a", "b"}

    def test_from_arrays_dictionary_encodes_strings(self):
        table = Table.from_arrays("t", {"s": np.array(["x", "y", "x"])})
        codes = table.column("s")
        assert codes.dtype == np.int64
        data = table.column_data("s")
        assert data.decode(codes[0]) == "x"
        assert data.decode(codes[2]) == "x"

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Table.from_arrays("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_unknown_column_raises(self):
        table = Table.from_arrays("t", {"a": np.arange(3)})
        with pytest.raises(KeyError):
            table.column("b")

    def test_gather(self):
        table = Table.from_arrays("t", {"a": np.array([10, 20, 30])})
        np.testing.assert_array_equal(table.gather("a", np.array([2, 0])), [30, 10])


class TestSortedIndex:
    def test_lookup_eq(self):
        values = np.array([3, 1, 3, 2])
        index = SortedIndex(values)
        assert sorted(index.lookup_eq(3)) == [0, 2]
        assert list(index.lookup_eq(99)) == []

    def test_lookup_range_inclusive_exclusive(self):
        index = SortedIndex(np.array([1, 2, 3, 4, 5]))
        assert sorted(index.lookup_range(2, 4)) == [1, 2, 3]
        assert sorted(index.lookup_range(2, 4, low_inclusive=False, high_inclusive=False)) == [2]

    def test_lookup_range_open_ended(self):
        index = SortedIndex(np.array([1, 2, 3]))
        assert sorted(index.lookup_range(None, 2)) == [0, 1]
        assert sorted(index.lookup_range(2, None)) == [1, 2]

    def test_lookup_in(self):
        index = SortedIndex(np.array([5, 6, 7, 5]))
        assert sorted(index.lookup_in(np.array([5, 7]))) == [0, 2, 3]

    def test_lookup_batch_alignment(self):
        index = SortedIndex(np.array([1, 2, 2, 3]))
        probe_idx, row_ids = index.lookup_batch(np.array([2, 9, 1]))
        # key 2 matches rows {1,2}, key 9 nothing, key 1 row 0
        assert list(probe_idx) == [0, 0, 2]
        assert sorted(row_ids[:2]) == [1, 2]
        assert row_ids[2] == 0

    def test_hash_index_matches_sorted(self):
        values = np.random.default_rng(0).integers(0, 10, size=100)
        sorted_index = SortedIndex(values)
        hash_index = HashIndex(values)
        for key in range(10):
            assert sorted(hash_index.lookup_eq(key)) == sorted(sorted_index.lookup_eq(key))


class TestStorageDatabase:
    def test_index_declared_and_built_lazily(self):
        db = StorageDatabase()
        db.add_table(Table.from_arrays("t", {"a": np.arange(4)}))
        db.declare_index("t", "a")
        assert db.has_index("t", "a")
        assert not db.has_index("t", "b")
        assert sorted(db.index("t", "a").lookup_eq(2)) == [2]

    def test_undeclared_index_raises(self):
        db = StorageDatabase()
        db.add_table(Table.from_arrays("t", {"a": np.arange(4)}))
        with pytest.raises(KeyError):
            db.index("t", "a")

    def test_duplicate_table_raises(self):
        db = StorageDatabase()
        db.add_table(Table.from_arrays("t", {"a": np.arange(4)}))
        with pytest.raises(ValueError):
            db.add_table(Table.from_arrays("t", {"a": np.arange(4)}))


class TestSchema:
    def test_join_graph_edges(self):
        schema = Schema(
            tables=[
                TableSchema("a", [ColumnSchema("id", is_primary_key=True)]),
                TableSchema("b", [ColumnSchema("id", is_primary_key=True), ColumnSchema("a_id")]),
            ],
            foreign_keys=[ForeignKey("b", "a_id", "a", "id")],
        )
        graph = schema.join_graph()
        assert graph.has_edge("a", "b")
        assert schema.join_columns("b", "a") == ("a_id", "id")
        assert schema.join_columns("a", "b") == ("id", "a_id")

    def test_fk_validation(self):
        with pytest.raises(KeyError):
            Schema(
                tables=[TableSchema("a", [ColumnSchema("id")])],
                foreign_keys=[ForeignKey("a", "id", "missing", "id")],
            )

    def test_duplicate_column_raises(self):
        with pytest.raises(ValueError):
            TableSchema("a", [ColumnSchema("x"), ColumnSchema("x")])

    def test_bad_dtype_raises(self):
        with pytest.raises(ValueError):
            ColumnSchema("x", dtype="text")


class TestStatistics:
    def test_eq_selectivity_mcv_exact(self):
        # Value 0 dominates; MCV should capture its frequency exactly.
        sample = np.concatenate([np.zeros(900), np.arange(1, 101)])
        stats = _analyze_column(sample, total_rows=1000, histogram_bins=8, mcv_count=4)
        assert stats.selectivity_eq(0.0) == pytest.approx(0.9)

    def test_eq_selectivity_out_of_range_zero(self):
        stats = _analyze_column(np.arange(100.0), total_rows=100, histogram_bins=8, mcv_count=4)
        assert stats.selectivity_eq(-5.0) == 0.0
        assert stats.selectivity_eq(1000.0) == 0.0

    def test_range_selectivity_uniform(self):
        stats = _analyze_column(np.arange(1000.0), total_rows=1000, histogram_bins=10, mcv_count=0)
        assert stats.selectivity_range(0, 499) == pytest.approx(0.5, abs=0.05)
        assert stats.selectivity_range(None, None) == pytest.approx(1.0, abs=0.01)

    def test_range_empty_interval(self):
        stats = _analyze_column(np.arange(100.0), total_rows=100, histogram_bins=8, mcv_count=0)
        assert stats.selectivity_range(50, 40) == 0.0

    def test_ndv_estimator_close_for_uniform(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 50, size=5000)
        stats = _analyze_column(values, total_rows=5000, histogram_bins=8, mcv_count=4)
        assert 40 <= stats.n_distinct <= 60

    def test_analyze_catalog_covers_all_tables(self):
        db = StorageDatabase()
        db.add_table(Table.from_arrays("t1", {"a": np.arange(10)}))
        db.add_table(Table.from_arrays("t2", {"b": np.arange(20)}))
        catalog = StatisticsCatalog.analyze(db)
        assert catalog.table("t1").row_count == 10
        assert catalog.table("t2").column("b") is not None
        assert "t3" not in catalog


class TestDatagen:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = datagen.zipf_weights(100, 1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 0).all()

    def test_serial_spec(self):
        spec = datagen.SerialSpec("id")
        out = spec.generate(5, np.random.default_rng(0), {})
        np.testing.assert_array_equal(out, np.arange(5))

    def test_zipf_fk_unshuffled_popularity_at_zero(self):
        spec = datagen.ZipfFKSpec("fk", ref_size=100, skew=1.5, shuffle_ranks=False)
        out = spec.generate(10_000, np.random.default_rng(0), {})
        counts = np.bincount(out, minlength=100)
        assert counts[0] == counts.max()

    def test_correlated_spec_follows_mapping(self):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 10, size=5000)
        spec = datagen.CorrelatedSpec(
            "c", base_column="b", base_domain=10, cardinality=7, noise=0.0, mapping_seed=3
        )
        out = spec.generate(5000, rng, {"b": base})
        mapping = datagen.correlation_mapping(3, 10, 7)
        np.testing.assert_array_equal(out, mapping[base])

    def test_correlated_requires_base(self):
        spec = datagen.CorrelatedSpec("c", base_column="b")
        with pytest.raises(KeyError):
            spec.generate(10, np.random.default_rng(0), {})

    def test_popularity_rank_descending(self):
        spec = datagen.PopularityRankSpec("r", low=0, high=100, noise_std=0.0)
        out = spec.generate(101, np.random.default_rng(0), {})
        assert out[0] == 100 and out[-1] == 0

    def test_generate_tables_deterministic(self):
        specs = [datagen.TableSpec("t", 50, [datagen.SerialSpec("id"), datagen.CategoricalSpec("c", cardinality=5)])]
        a = datagen.generate_tables(specs, seed=9)
        b = datagen.generate_tables(specs, seed=9)
        np.testing.assert_array_equal(a["t"]["c"], b["t"]["c"])


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=500), skew=st.floats(min_value=0.1, max_value=3.0))
def test_zipf_weights_property(n, skew):
    weights = datagen.zipf_weights(n, skew)
    assert len(weights) == n
    assert weights.sum() == pytest.approx(1.0)
    assert (weights > 0).all()


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=300))
def test_sorted_index_eq_matches_linear_scan(values):
    arr = np.array(values)
    index = SortedIndex(arr)
    probe = values[0]
    expected = sorted(np.flatnonzero(arr == probe))
    assert sorted(index.lookup_eq(probe)) == expected
