"""End-to-end integration tests across subsystems.

These exercise the full stack the way the benches do, at the smallest
budgets that still verify behaviour (not quality).
"""

import numpy as np
import pytest

from repro import FossConfig, build_workload_by_name
from repro.core import FossTrainer
from repro.baselines.bao import BaoOptimizer
from repro.baselines.postgres import PostgresOptimizer
from repro.core.aam import AAMConfig
from repro.core.icp import IncompletePlan
from repro.experiments.harness import evaluate_optimizer
from repro.optimizer.plans import plan_signature


def tiny_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=10,
        bootstrap_episodes=6,
        aam_retrain_threshold=40,
        random_sample_episodes=2,
        validation_budget=10,
        seed=3,
        aam=AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=1),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


class TestFossEndToEnd:
    def test_full_loop_on_job(self, job_workload):
        trainer = FossTrainer(job_workload, tiny_config())
        stats = trainer.train(iterations=1)
        assert len(stats) == 1
        optimizer = trainer.make_optimizer()
        evaluation = evaluate_optimizer(job_workload.database, job_workload.test[:6], optimizer)
        assert evaluation.gmrl > 0
        assert all(t >= 0 for t in evaluation.optimization_ms)

    def test_foss_never_returns_invalid_plan(self, job_workload):
        trainer = FossTrainer(job_workload, tiny_config())
        trainer.train(iterations=1)
        optimizer = trainer.make_optimizer()
        db = job_workload.database
        for wq in job_workload.test[:10]:
            chosen = optimizer.optimize(wq.query)
            icp = IncompletePlan.extract(chosen.plan)
            assert sorted(icp.order) == sorted(wq.query.aliases)
            result = db.execute(wq.query, chosen.plan)
            assert np.isfinite(result.latency_ms)

    def test_foss_learns_repairable_queries(self, job_workload):
        """On queries with known 1-step repairs, a short training run must
        already find improvements (the validated learning behaviour)."""
        from repro.core.actions import ActionSpace

        db = job_workload.database
        space = ActionSpace(max_tables=job_workload.max_query_tables)
        repairable = []
        for wq in job_workload.train:
            original = db.plan(wq.query).plan
            original_latency = db.execute(wq.query, original).latency_ms
            if original_latency < 0.5:
                continue
            icp = IncompletePlan.extract(original)
            best = original_latency
            for action_id in np.flatnonzero(space.legality_mask(icp)):
                candidate = space.apply(int(action_id), icp)
                plan = db.plan_with_hints(wq.query, candidate.order, candidate.methods).plan
                latency = db.execute(wq.query, plan, timeout_ms=original_latency * 1.5).latency_ms
                best = min(best, latency)
            if best < original_latency / 1.5:
                repairable.append(wq)
            if len(repairable) >= 6:
                break
        if len(repairable) < 3:
            pytest.skip("this seed/scale produced too few repairable queries")
        job_workload.train[:] = repairable  # focus training
        try:
            trainer = FossTrainer(
                job_workload,
                tiny_config(episodes_per_update=90, bootstrap_episodes=40, seed=11),
            )
            trainer.train(iterations=6)
            optimizer = trainer.make_optimizer()
            evaluation = evaluate_optimizer(db, repairable, optimizer)
            # At this budget full convergence is not guaranteed, but FOSS
            # must (a) never lose to the expert (original-plan assurance)
            # and (b) have *discovered* a better plan for at least one
            # repairable query during training (exploration + validation).
            assert evaluation.gmrl <= 1.0 + 1e-9
            discovered = 0
            for wq in repairable:
                original_latency = db.original_latency(wq.query)
                records = trainer.buffer.records_for(wq.query)
                if any(
                    not r.timed_out and r.latency_ms < original_latency * 0.95
                    for r in records
                ):
                    discovered += 1
            assert discovered >= 1, "training never found a repair"
        finally:
            # Restore the fixture's train split for other tests.
            rebuilt = build_workload_by_name("job", scale=0.03, seed=1)
            job_workload.train[:] = rebuilt.train

    def test_trainer_on_tpcds(self, tpcds_workload):
        trainer = FossTrainer(tpcds_workload, tiny_config())
        trainer.train(iterations=1)
        optimizer = trainer.make_optimizer()
        evaluation = evaluate_optimizer(tpcds_workload.database, tpcds_workload.test[:5], optimizer)
        # TPC-DS has little headroom and sub-millisecond latencies at this
        # toy scale, so ratios are noisy; assert structural sanity only.
        assert np.isfinite(evaluation.gmrl) and evaluation.gmrl > 0
        assert all(np.isfinite(l) for l in evaluation.latencies_ms)

    def test_trainer_on_stack(self, stack_workload):
        trainer = FossTrainer(stack_workload, tiny_config())
        trainer.train(iterations=1)
        optimizer = trainer.make_optimizer()
        evaluation = evaluate_optimizer(stack_workload.database, stack_workload.test[:5], optimizer)
        assert evaluation.gmrl > 0


class TestCrossMethodComparison:
    def test_methods_agree_on_query_results(self, job_workload):
        """Every optimizer's plan must produce the same COUNT(*)."""
        db = job_workload.database
        wq = next(w for w in job_workload.all_queries if w.query.num_tables == 5)
        pg_plan = PostgresOptimizer(db).optimize(wq.query).plan
        bao_plan = BaoOptimizer(db).optimize(wq.query).plan
        trainer = FossTrainer(job_workload, tiny_config())
        trainer.bootstrap()
        foss_plan = trainer.make_optimizer().optimize(wq.query).plan
        counts = {
            db.execute(wq.query, plan, use_cache=False).output_rows
            for plan in (pg_plan, bao_plan, foss_plan)
        }
        assert len(counts) == 1

    def test_dynamic_timeout_protects_training(self, job_workload):
        """No single training execution may exceed ~1.5x its original plan."""
        trainer = FossTrainer(job_workload, tiny_config(seed=13))
        trainer.bootstrap()
        db = job_workload.database
        for query_sig, per_query in trainer.buffer._records.items():
            query = trainer.buffer._queries[query_sig]
            original = db.original_latency(query)
            for record in per_query.values():
                assert record.latency_ms <= original * 1.5 + 1e-6


class TestDeterminism:
    def test_same_seed_same_training(self, job_workload):
        results = []
        for _ in range(2):
            trainer = FossTrainer(job_workload, tiny_config(seed=21))
            trainer.bootstrap()
            episode = trainer.planners[0].run_episode(
                trainer.sim_env, job_workload.train[0].query, deterministic=True
            )
            results.append(plan_signature(episode.best_plan))
        assert results[0] == results[1]
