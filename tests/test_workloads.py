"""Workload-construction tests: schemas, counts, splits, planted hazards."""

import numpy as np
import pytest

from repro.workloads.base import build_workload_by_name
from repro.workloads.job import job_schema
from repro.workloads.stack import stack_schema
from repro.workloads.tpcds import tpcds_schema


class TestJobWorkload:
    def test_schema_has_21_relations(self):
        assert len(job_schema()) == 21

    def test_query_counts_match_paper(self, job_workload):
        # 113 queries, 94 train / 19 test (Balsa's random split).
        assert len(job_workload.train) == 94
        assert len(job_workload.test) == 19

    def test_33_templates(self, job_workload):
        assert len(job_workload.queries_by_template()) == 33

    def test_join_count_range_matches_paper(self, job_workload):
        """JOB queries have 3..16 joins (4..17 tables), mean ~8 joins."""
        joins = [wq.query.num_tables - 1 for wq in job_workload.all_queries]
        assert min(joins) >= 3
        assert max(joins) == 16
        assert 6.0 <= np.mean(joins) <= 10.0

    def test_queries_bind_and_plan(self, job_workload):
        db = job_workload.database
        for wq in job_workload.all_queries[:15]:
            plan = db.plan(wq.query).plan
            assert plan.est_cost > 0

    def test_deterministic_rebuild(self):
        a = build_workload_by_name("job", scale=0.02, seed=9)
        b = build_workload_by_name("job", scale=0.02, seed=9)
        assert [q.sql for q in a.all_queries] == [q.sql for q in b.all_queries]
        ta = a.dataset.storage.table("title")
        tb = b.dataset.storage.table("title")
        np.testing.assert_array_equal(ta.column("production_year"), tb.column("production_year"))

    def test_scale_changes_sizes(self):
        small = build_workload_by_name("job", scale=0.02, seed=9)
        big = build_workload_by_name("job", scale=0.04, seed=9)
        assert big.dataset.storage.total_rows() > small.dataset.storage.total_rows()

    def test_popularity_correlation_planted(self, job_workload):
        """Old titles (low ids) must receive most cast_info references."""
        storage = job_workload.dataset.storage
        movie_ids = storage.table("cast_info").column("movie_id")
        n_title = storage.table("title").num_rows
        top_decile_refs = (movie_ids < n_title // 10).mean()
        assert top_decile_refs > 0.3  # far above the uniform 10%


class TestTpcdsWorkload:
    def test_query_counts(self, tpcds_workload):
        # 19 templates x 6 queries, 5 train / 1 test per template.
        assert len(tpcds_workload.train) == 95
        assert len(tpcds_workload.test) == 19
        assert len(tpcds_workload.queries_by_template()) == 19

    def test_templates_match_paper_selection(self, tpcds_workload):
        expected = {f"q{n}" for n in (3, 7, 12, 18, 20, 26, 27, 37, 42, 43,
                                      50, 52, 55, 62, 82, 91, 96, 98, 99)}
        assert set(tpcds_workload.queries_by_template()) == expected

    def test_all_queries_plan(self, tpcds_workload):
        db = tpcds_workload.database
        for wq in tpcds_workload.all_queries[:10]:
            assert db.plan(wq.query).plan.est_cost > 0

    def test_schema_exists(self):
        assert "store_sales" in tpcds_schema().table_names


class TestStackWorkload:
    def test_query_counts(self, stack_workload):
        # 12 templates x 10 queries, 8 train / 2 test per template.
        assert len(stack_workload.train) == 96
        assert len(stack_workload.test) == 24
        assert len(stack_workload.queries_by_template()) == 12

    def test_templates_match_paper_selection(self, stack_workload):
        expected = {f"q{n}" for n in (1, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15, 16)}
        assert set(stack_workload.queries_by_template()) == expected

    def test_heavy_user_skew_planted(self, stack_workload):
        storage = stack_workload.dataset.storage
        owners = storage.table("question").column("owner_user_id")
        n_users = storage.table("so_user").num_rows
        top_percentile = (owners < max(n_users // 100, 1)).mean()
        assert top_percentile > 0.10  # >10% of questions from top 1% users

    def test_schema_exists(self):
        assert "so_user" in stack_schema().table_names


class TestDispatch:
    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            build_workload_by_name("tpch")

    def test_dispatch_by_name(self):
        workload = build_workload_by_name("JOB", scale=0.02, seed=4)
        assert workload.name == "job"
