"""Reward machinery and plan-encoding tests (paper §III reward, §IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import (
    OP_HASH_JOIN,
    OP_INDEX_SCAN,
    OP_SEQ_SCAN,
    PlanEncoder,
    STRUCT_LEFT,
    STRUCT_RIGHT,
    STRUCT_ROOT,
)
from repro.core.reward import AdvantageFunction, ReferenceSet, RewardConfig


class TestAdvantageFunction:
    def test_initial_range(self):
        adv = AdvantageFunction()
        assert adv.initial(100.0, 50.0) == pytest.approx(0.5)
        assert adv.initial(100.0, 100.0) == pytest.approx(0.0)
        assert adv.initial(100.0, 300.0) == pytest.approx(-2.0)

    def test_discretize_point_set(self):
        """Paper point set {0.05, 0.50} -> scores {0, 1, 2}."""
        adv = AdvantageFunction()
        assert adv.discretize(-1.0) == 0
        assert adv.discretize(0.04) == 0
        assert adv.discretize(0.05) == 0  # boundary belongs to the left interval
        assert adv.discretize(0.051) == 1
        assert adv.discretize(0.50) == 1
        assert adv.discretize(0.51) == 2
        assert adv.discretize(1.0) == 2

    def test_score_from_latencies(self):
        adv = AdvantageFunction()
        assert adv.score(100.0, 100.0) == 0   # no improvement
        assert adv.score(100.0, 80.0) == 1    # 20% saved
        assert adv.score(100.0, 10.0) == 2    # 90% saved

    def test_midpoints(self):
        adv = AdvantageFunction()
        assert adv.midpoint(0) == 0.0
        assert adv.midpoint(1) == pytest.approx((0.05 + 0.50) / 2)
        assert adv.midpoint(2) == pytest.approx((0.50 + 1.0) / 2)

    def test_zero_left_latency_raises(self):
        with pytest.raises(ValueError):
            AdvantageFunction().initial(0.0, 1.0)

    def test_penalty_sign(self):
        adv = AdvantageFunction(RewardConfig(penalty_gamma=2.0))
        assert adv.penalty(min_steps=1, current_step=1) == 0.0
        assert adv.penalty(min_steps=1, current_step=3) == -4.0

    def test_penalty_disabled(self):
        adv = AdvantageFunction(RewardConfig(penalty_gamma=0.0))
        assert adv.penalty(min_steps=0, current_step=3) == 0.0

    def test_episode_bounty_rewards_beating_everything(self):
        adv = AdvantageFunction()
        # refs: best saved 60%, median saved 30%, original 0.
        bounties = (0.6, 0.3, 0.0)
        beats_all = adv.episode_bounty(bounties, [2, 2, 2])
        beats_none = adv.episode_bounty(bounties, [0, 0, 0])
        assert beats_all > beats_none

    def test_episode_bounty_degenerate_refs(self):
        adv = AdvantageFunction()
        assert adv.episode_bounty((0.0, 0.0, 0.0), [1, 1, 1]) > 0.0

    def test_episode_bounty_wrong_arity(self):
        adv = AdvantageFunction()
        with pytest.raises(ValueError):
            adv.episode_bounty((0.5, 0.2), [1, 1])

    def test_invalid_point_set(self):
        with pytest.raises(ValueError):
            AdvantageFunction(RewardConfig(points=(0.5, 0.1)))


class TestReferenceSet:
    def test_from_latencies(self):
        refs = ReferenceSet.from_latencies(100.0, [40.0, 70.0, 90.0])
        assert refs.latencies[0] == 40.0     # best
        assert refs.latencies[1] == 70.0     # median
        assert refs.latencies[2] == 100.0    # original
        assert refs.bounties[0] == pytest.approx(0.6)
        assert refs.bounties[2] == 0.0

    def test_no_better_plans(self):
        refs = ReferenceSet.from_latencies(100.0, [150.0, 200.0])
        assert refs.bounties == (0.0, 0.0, 0.0)
        assert refs.latencies == (100.0, 100.0, 100.0)

    def test_bounties_sorted_descending(self):
        refs = ReferenceSet.from_latencies(100.0, [10.0, 50.0, 80.0])
        assert refs.bounties[0] >= refs.bounties[1] >= refs.bounties[2]


@settings(max_examples=50, deadline=None)
@given(
    left=st.floats(min_value=0.01, max_value=1e5),
    right=st.floats(min_value=0.01, max_value=1e5),
)
def test_advantage_antisymmetry_property(left, right):
    """Adv_init(l, r) > 0 iff Adv_init(r, l) < 0 (strict improvement flips)."""
    adv = AdvantageFunction()
    forward = adv.initial(left, right)
    backward = adv.initial(right, left)
    if forward > 0:
        assert backward < 0
    assert adv.initial(left, left) == 0.0


class TestPlanEncoding:
    @pytest.fixture()
    def encoder(self, job_workload):
        db = job_workload.database
        return PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)

    def _plan(self, job_workload, num_tables=4):
        db = job_workload.database
        wq = next(w for w in job_workload.all_queries if w.query.num_tables == num_tables)
        return wq.query, db.plan(wq.query).plan

    def test_node_count(self, encoder, job_workload):
        query, plan = self._plan(job_workload, num_tables=4)
        encoded = encoder.encode(query, plan)
        assert encoded.num_nodes == 2 * 4 - 1
        assert encoded.node_mask.sum() == encoded.num_nodes

    def test_root_is_first_node(self, encoder, job_workload):
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        assert encoded.structs[0] == STRUCT_ROOT
        assert encoded.ops[0] in (OP_HASH_JOIN, OP_HASH_JOIN + 1, OP_HASH_JOIN + 2)

    def test_heights_consistent(self, encoder, job_workload):
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        # Root has the max height; scans have height 0.
        real = encoded.heights[encoded.node_mask]
        assert encoded.heights[0] == real.max()
        scan_mask = (encoded.ops == OP_SEQ_SCAN) | (encoded.ops == OP_INDEX_SCAN)
        assert (encoded.heights[scan_mask & encoded.node_mask] == 0).all()

    def test_structure_types_balanced(self, encoder, job_workload):
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        real = encoded.structs[encoded.node_mask]
        assert (real == STRUCT_LEFT).sum() == (real == STRUCT_RIGHT).sum()
        assert (real == STRUCT_ROOT).sum() == 1

    def test_attention_mask_symmetric_and_reflexive(self, encoder, job_workload):
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        mask = encoded.attention_mask
        np.testing.assert_array_equal(mask, mask.T)
        assert mask.diagonal().all()

    def test_attention_mask_blocks_sibling_leaves(self, encoder, job_workload):
        """Two leaves are never ancestor/descendant of each other."""
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        leaf_idx = np.flatnonzero(
            ((encoded.ops == OP_SEQ_SCAN) | (encoded.ops == OP_INDEX_SCAN)) & encoded.node_mask
        )
        assert len(leaf_idx) >= 2
        assert not encoded.attention_mask[leaf_idx[0], leaf_idx[1]]

    def test_root_reaches_everything(self, encoder, job_workload):
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        assert encoded.attention_mask[0, : encoded.num_nodes].all()

    def test_filter_values_normalized(self, encoder, job_workload):
        query, plan = self._plan(job_workload)
        encoded = encoder.encode(query, plan)
        assert (encoded.filter_vals >= 0.0).all()
        assert (encoded.filter_vals <= 1.0).all()

    def test_too_many_nodes_raises(self, job_workload):
        db = job_workload.database
        small = PlanEncoder(db.schema, max_nodes=3)
        query, plan = self._plan(job_workload)
        with pytest.raises(ValueError):
            small.encode(query, plan)

    def test_different_methods_produce_different_encodings(self, encoder, job_workload):
        from repro.core.icp import IncompletePlan

        db = job_workload.database
        query, plan = self._plan(job_workload)
        icp = IncompletePlan.extract(plan)
        current = icp.methods[0]
        other = next(m for m in ("hash", "merge", "nestloop") if m != current)
        alt = db.plan_with_hints(query, icp.order, (other,) + icp.methods[1:]).plan
        a = encoder.encode(query, plan)
        b = encoder.encode(query, alt)
        assert not np.array_equal(a.ops, b.ops)


class TestBatchEncoderParity:
    """The vectorized batch encoder must match per-plan reference encoding."""

    def _pairs(self, job_workload, n):
        db = job_workload.database
        eligible = [w for w in job_workload.all_queries if w.query.num_tables >= 3]
        return [(w.query, db.plan(w.query).plan) for w in eligible[:n]]

    def test_encode_many_matches_encode(self, job_workload):
        """A >=8 batch (vectorized heights path) vs one-at-a-time encoding."""
        db = job_workload.database
        pairs = self._pairs(job_workload, 10)
        assert len(pairs) >= 8
        batch_enc = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
        single_enc = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
        batched = batch_enc.encode_many(pairs)
        for (query, plan), enc in zip(pairs, batched):
            ref = single_enc.encode(query, plan)
            assert enc.num_nodes == ref.num_nodes
            for field in (
                "ops", "tables", "join_left_col", "join_right_col",
                "filter_cols", "filter_ops", "filter_vals",
                "heights", "structs", "attention_mask", "node_mask",
            ):
                np.testing.assert_array_equal(
                    getattr(enc, field), getattr(ref, field), err_msg=field
                )

    def test_packed_blocks_view_the_named_fields(self, job_workload):
        """int_block/fint_block rows must alias the per-field arrays."""
        db = job_workload.database
        encoder = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
        query, plan = self._pairs(job_workload, 1)[0]
        enc = encoder.encode(query, plan)
        assert enc.int_block is not None and enc.fint_block is not None
        for row, field in enumerate(
            ("ops", "tables", "join_left_col", "join_right_col", "heights", "structs")
        ):
            np.testing.assert_array_equal(enc.int_block[row], getattr(enc, field))
        np.testing.assert_array_equal(enc.fint_block[0], enc.filter_cols)
        np.testing.assert_array_equal(enc.fint_block[1], enc.filter_ops)

    def test_reachability_matches_python_reference(self, job_workload):
        """The iterative ancestor chase equals a per-plan Python closure."""
        from repro.optimizer.plans import JoinNode

        db = job_workload.database
        encoder = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
        for query, plan in self._pairs(job_workload, 9):
            enc = encoder.encode(query, plan)
            # Mirror the encoder's pre-order walk to recover parent pointers.
            parents = []
            stack = [(plan, -1)]
            while stack:
                node, parent = stack.pop()
                i = len(parents)
                parents.append(parent)
                if isinstance(node, JoinNode):
                    stack.append((node.right, i))
                    stack.append((node.left, i))
            n = len(parents)
            ref = np.zeros((40, 40), dtype=bool)
            np.fill_diagonal(ref, True)  # reflexive over padding too
            for i in range(n):
                a = parents[i]
                while a >= 0:
                    ref[i, a] = ref[a, i] = True
                    a = parents[a]
            np.testing.assert_array_equal(enc.attention_mask, ref)

    def test_heights_small_and_large_batch_agree(self, job_workload):
        """batch<8 (list sweep) and batch>=8 (fixpoint) give the same ints."""
        db = job_workload.database
        pairs = self._pairs(job_workload, 9)
        small = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
        large = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
        large_encs = large.encode_many(pairs)
        for (query, plan), big in zip(pairs, large_encs):
            np.testing.assert_array_equal(
                small.encode_many([(query, plan)])[0].heights, big.heights
            )


class TestLeafCacheLRU:
    """`_leaf_cache` keeps recently-touched scan features past capacity."""

    def _alt_plan(self, db, query, plan):
        from repro.core.icp import IncompletePlan

        icp = IncompletePlan.extract(plan)
        current = icp.methods[0]
        other = next(m for m in ("hash", "merge", "nestloop") if m != current)
        return db.plan_with_hints(query, icp.order, (other,) + icp.methods[1:]).plan

    def test_recently_used_leaves_survive_eviction(self, job_workload):
        db = job_workload.database
        eligible = [w for w in job_workload.all_queries if w.query.num_tables >= 3]
        (q1, p1), (q2, p2), (q3, p3) = (
            (w.query, db.plan(w.query).plan) for w in eligible[:3]
        )
        cap = q1.num_tables + q2.num_tables
        encoder = PlanEncoder(
            db.schema, max_nodes=40, statistics=db.statistics, cache_capacity=cap
        )
        encoder.encode(q1, p1)
        keys_q1 = set(encoder._leaf_cache)
        encoder.encode(q2, p2)
        assert len(encoder._leaf_cache) == cap
        # Touch q1's leaves again through a different plan of the same query
        # (leaf features are join-order/method-invariant, so this hits).
        encoder.encode(q1, self._alt_plan(db, q1, p1))
        assert set(encoder._leaf_cache) >= keys_q1
        # Overflow: the least-recently-used entries (q2's) are evicted first.
        encoder.encode(q3, p3)
        assert len(encoder._leaf_cache) <= cap
        assert keys_q1 <= set(encoder._leaf_cache)

    def test_leaf_cache_bounded(self, job_workload):
        db = job_workload.database
        encoder = PlanEncoder(
            db.schema, max_nodes=40, statistics=db.statistics, cache_capacity=5
        )
        for w in [w for w in job_workload.all_queries if w.query.num_tables >= 3][:6]:
            encoder.encode(w.query, db.plan(w.query).plan)
        assert len(encoder._leaf_cache) <= 5
        assert len(encoder._cache) <= 5
