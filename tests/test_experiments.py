"""Metrics, harness, and reporting tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.postgres import PostgresOptimizer
from repro.experiments.harness import (
    EvaluationResult,
    KnownBestResult,
    MethodResult,
    TrainingCurve,
    evaluate_optimizer,
    known_best_analysis,
    optimization_times,
)
from repro.experiments.metrics import (
    geometric_mean_relevant_latency,
    workload_relevant_latency,
)
from repro.experiments import reporting


class TestMetrics:
    def test_gmrl_identity(self):
        assert geometric_mean_relevant_latency([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_gmrl_halved_latency(self):
        assert geometric_mean_relevant_latency([1, 1], [2, 2]) == pytest.approx(0.5)

    def test_gmrl_geometric_not_arithmetic(self):
        # One 4x win and one 4x loss cancel geometrically.
        assert geometric_mean_relevant_latency([1, 4], [4, 1]) == pytest.approx(1.0)

    def test_gmrl_floor_guards_zero(self):
        value = geometric_mean_relevant_latency([0.0], [1.0])
        assert np.isfinite(value) and value > 0

    def test_wrl_includes_optimization_time(self):
        wrl = workload_relevant_latency([10], [10], [10], [0])
        assert wrl == pytest.approx(2.0)

    def test_wrl_total_latency_dominated_by_heavy_query(self):
        wrl = workload_relevant_latency([1, 100], [1, 1000], [0, 0], [0, 0])
        assert wrl == pytest.approx(101 / 1001)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            geometric_mean_relevant_latency([1], [1, 2])
        with pytest.raises(ValueError):
            workload_relevant_latency([1], [1], [1], [])


@settings(max_examples=40, deadline=None)
@given(
    latencies=st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=20),
    factor=st.floats(min_value=0.1, max_value=10.0),
)
def test_gmrl_scaling_property(latencies, factor):
    """Scaling every learned latency by f scales GMRL by exactly f."""
    scaled = [l * factor for l in latencies]
    gmrl = geometric_mean_relevant_latency(scaled, latencies)
    assert gmrl == pytest.approx(factor, rel=1e-6)


class TestHarness:
    def test_evaluate_postgres_is_unity(self, job_workload):
        db = job_workload.database
        result = evaluate_optimizer(db, job_workload.test[:5], PostgresOptimizer(db))
        assert result.gmrl == pytest.approx(1.0)
        np.testing.assert_allclose(result.latencies_ms, result.expert_latencies_ms)

    def test_optimization_times_shape(self, job_workload):
        db = job_workload.database
        times = optimization_times(db, job_workload.test[:5], PostgresOptimizer(db))
        assert times.shape == (5,)
        assert (times >= 0).all()

    def test_known_best_ranks_descending(self, job_workload):
        db = job_workload.database
        queries = job_workload.test[:5]
        best = {wq.query_id: db.original_latency(wq.query) * 0.5 for wq in queries}
        result = known_best_analysis(db, queries, "stub", best)
        assert (np.diff(result.savings_ratios) <= 1e-12).all()
        assert result.queries_saving_at_least(0.25) == 5

    def test_known_best_never_negative(self, job_workload):
        db = job_workload.database
        queries = job_workload.test[:3]
        worse = {wq.query_id: db.original_latency(wq.query) * 2.0 for wq in queries}
        result = known_best_analysis(db, queries, "stub", worse)
        assert (result.savings_ratios >= 0).all()


class TestReporting:
    def _fake_eval(self, wrl, gmrl):
        return EvaluationResult(
            query_ids=["q1"], latencies_ms=[wrl * 100], optimization_ms=[1],
            expert_latencies_ms=[100], expert_optimization_ms=[1],
            wrl=wrl, gmrl=gmrl,
        )

    def _results(self):
        return [
            MethodResult("FOSS", "job", self._fake_eval(0.2, 0.5), self._fake_eval(0.3, 0.6)),
            MethodResult("Bao", "job", self._fake_eval(0.4, 0.7), self._fake_eval(0.5, 0.8)),
            MethodResult("Balsa", "stack", self._fake_eval(1.0, 1.0), self._fake_eval(1.0, 1.0), timed_out=True),
        ]

    def test_table1_includes_tle(self):
        text = reporting.render_table1(self._results(), ["job", "stack"])
        assert "TLE" in text
        assert "FOSS" in text

    def test_relative_speedup_excludes_baseline(self):
        text = reporting.render_relative_speedup(self._results())
        assert "FOSS" in text.splitlines()[0]
        assert "Bao" in text

    def test_box_stats(self):
        text = reporting.render_box_stats({"FOSS": np.array([1.0, 2.0, 3.0, 4.0])})
        assert "p50" in text and "FOSS" in text

    def test_known_best_rendering(self):
        result = KnownBestResult("FOSS", ["a", "b"], np.array([0.9, 0.1]))
        text = reporting.render_known_best([result])
        assert ">=25% saved" in text

    def test_steps_distribution(self):
        text = reporting.render_steps_distribution({3: {0: 5, 1: 3, 2: 1, 3: 1}})
        assert "step0" in text

    def test_training_curves(self):
        curve = TrainingCurve("FOSS", "job")
        curve.record(10.0, 1.5, 0.8)
        text = reporting.render_training_curves([curve])
        assert "FOSS" in text

    def test_ablation_table(self):
        rows = [{"experiment": "3-Maxsteps", "training_time_s": 9.0, "optimization_ms": 200.0, "gmrl": 0.43}]
        text = reporting.render_ablation_table(rows)
        assert "3-Maxsteps" in text
