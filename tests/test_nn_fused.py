"""Fused inference kernels: gradient correctness and bitwise forward parity.

The fused kernels (:func:`fused_linear`, :func:`fused_attention`) and the
layer-level no_grad fast paths promise two things:

* **training**: one tape node whose backward composes the unfused ops'
  closures exactly — gradients equal the unfused chain bit for bit, and
  both agree with central finite differences;
* **inference**: the no_grad fast path evaluates the identical numpy
  expression sequence as the tape path, so whole-network forwards
  (StateNetwork, ActorCritic) are bitwise-equal across the two paths and
  construct zero tape nodes.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import profile
from repro.nn.tensor import Tensor, no_grad


def _finite_diff(loss_fn, arr: np.ndarray, h: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``loss_fn`` (a float of ``arr``)."""
    grad = np.zeros_like(arr)
    flat = arr.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        keep = flat[i]
        flat[i] = keep + h
        hi = loss_fn()
        flat[i] = keep - h
        lo = loss_fn()
        flat[i] = keep
        gflat[i] = (hi - lo) / (2.0 * h)
    return grad


class TestFusedLinear:
    @pytest.mark.parametrize("activation", [None, "relu", "tanh"])
    def test_grads_equal_unfused_chain(self, activation, rng):
        xd = rng.normal(size=(5, 7))
        wd = rng.normal(size=(7, 4))
        bd = rng.normal(size=4)
        seed = rng.normal(size=(5, 4))

        x1, w1, b1 = (Tensor(a.copy(), requires_grad=True) for a in (xd, wd, bd))
        fused = F.fused_linear(x1, w1, b1, activation=activation)
        (fused * Tensor(seed)).sum().backward()

        x2, w2, b2 = (Tensor(a.copy(), requires_grad=True) for a in (xd, wd, bd))
        pre = x2 @ w2 + b2
        if activation == "relu":
            unfused = pre.relu()
        elif activation == "tanh":
            unfused = pre.tanh()
        else:
            unfused = pre
        (unfused * Tensor(seed)).sum().backward()

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(x1.grad, x2.grad)
        assert np.array_equal(w1.grad, w2.grad)
        assert np.array_equal(b1.grad, b2.grad)

    @pytest.mark.parametrize("activation", [None, "relu", "tanh"])
    def test_grads_match_finite_differences(self, activation, rng):
        xd = rng.normal(size=(3, 4))
        wd = rng.normal(size=(4, 2))
        bd = rng.normal(size=2)
        seed = rng.normal(size=(3, 2))
        # Keep pre-activations away from relu's kink so the finite
        # difference never straddles the non-differentiable point.
        pre = xd @ wd + bd
        bd = bd + np.where(np.abs(pre) < 1e-2, 0.2, 0.0).max(axis=0)

        def loss():
            with no_grad():
                out = F.fused_linear(Tensor(xd), Tensor(wd), Tensor(bd), activation=activation)
            return float((out.data * seed).sum())

        x, w, b = (Tensor(a, requires_grad=True) for a in (xd, wd, bd))
        (F.fused_linear(x, w, b, activation=activation) * Tensor(seed)).sum().backward()

        for param, analytic in ((xd, x.grad), (wd, w.grad), (bd, b.grad)):
            numeric = _finite_diff(loss, param)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)

    def test_vector_input_outer_product_branch(self, rng):
        """1-D input exercises the ``np.outer`` weight-gradient branch."""
        xd, wd = rng.normal(size=6), rng.normal(size=(6, 3))
        x1, w1 = Tensor(xd.copy(), requires_grad=True), Tensor(wd.copy(), requires_grad=True)
        F.fused_linear(x1, w1, activation="tanh").sum().backward()
        x2, w2 = Tensor(xd.copy(), requires_grad=True), Tensor(wd.copy(), requires_grad=True)
        (x2 @ w2).tanh().sum().backward()
        assert np.array_equal(w1.grad, w2.grad)
        assert np.array_equal(x1.grad, x2.grad)


class TestFusedAttention:
    @staticmethod
    def _unfused(q, k, v, additive, scale):
        scores = (q @ k.transpose(-2, -1)) * scale
        if additive is not None:
            scores = scores + Tensor(additive)
        shifted = scores - Tensor(scores.data.max(axis=-1, keepdims=True))
        e = shifted.exp()
        attn = e / e.sum(axis=-1, keepdims=True)
        return attn @ v

    @pytest.mark.parametrize("masked", [False, True])
    def test_grads_equal_unfused_chain(self, masked, rng):
        shape = (2, 2, 5, 3)  # (batch, heads, nodes, head_dim)
        qd, kd, vd = (rng.normal(size=shape) for _ in range(3))
        seed = rng.normal(size=shape)
        scale = 1.0 / np.sqrt(shape[-1])
        additive = None
        if masked:
            reach = rng.random(size=(2, 1, 5, 5)) < 0.7
            reach |= np.eye(5, dtype=bool)  # keep every row non-empty
            additive = np.where(reach, 0.0, -1e9)

        q1, k1, v1 = (Tensor(a.copy(), requires_grad=True) for a in (qd, kd, vd))
        fused = F.fused_attention(q1, k1, v1, additive, scale)
        (fused * Tensor(seed)).sum().backward()

        q2, k2, v2 = (Tensor(a.copy(), requires_grad=True) for a in (qd, kd, vd))
        unfused = self._unfused(q2, k2, v2, additive, scale)
        (unfused * Tensor(seed)).sum().backward()

        assert np.array_equal(fused.data, unfused.data)
        assert np.array_equal(q1.grad, q2.grad)
        assert np.array_equal(k1.grad, k2.grad)
        assert np.array_equal(v1.grad, v2.grad)

    def test_grads_match_finite_differences(self, rng):
        shape = (1, 2, 4, 3)
        qd, kd, vd = (rng.normal(size=shape) for _ in range(3))
        seed = rng.normal(size=shape)
        scale = 0.5

        def loss():
            with no_grad():
                out = F.fused_attention(Tensor(qd), Tensor(kd), Tensor(vd), None, scale)
            return float((out.data * seed).sum())

        q, k, v = (Tensor(a, requires_grad=True) for a in (qd, kd, vd))
        (F.fused_attention(q, k, v, None, scale) * Tensor(seed)).sum().backward()

        for param, analytic in ((qd, q.grad), (kd, k.grad), (vd, v.grad)):
            numeric = _finite_diff(loss, param)
            np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-7)


@pytest.fixture(scope="module")
def aam_setup(request):
    from repro.core.aam import AAMConfig, AdvantageModel
    from repro.core.encoding import PlanEncoder

    workload = request.getfixturevalue("job_workload")
    db = workload.database
    encoder = PlanEncoder(db.schema, max_nodes=40, statistics=db.statistics)
    config = AAMConfig(
        d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=2, ff_hidden=32
    )
    model = AdvantageModel(
        encoder.num_tables, encoder.num_columns, 40,
        config=config, rng=np.random.default_rng(5),
    )
    queries = [w for w in workload.all_queries if w.query.num_tables >= 3][:5]
    plans = [encoder.encode(w.query, db.plan(w.query).plan) for w in queries]
    return model, plans


class TestWholeNetworkParity:
    """The no_grad fast path must be bitwise-equal to the tape path."""

    def test_statenet_fast_path_bitwise_equals_tape(self, aam_setup):
        model, plans = aam_setup
        steps = np.linspace(0.0, 1.0, len(plans))
        tape = model.state_network(plans, steps).data
        with no_grad():
            fast = model.state_network(plans, steps).data
        assert np.array_equal(tape, fast)

    def test_statenet_single_plan_parity(self, aam_setup):
        model, plans = aam_setup
        tape = model.state_network([plans[0]], np.array([0.5])).data
        with no_grad():
            fast = model.state_network([plans[0]], np.array([0.5])).data
        assert np.array_equal(tape, fast)

    def test_policy_fast_path_bitwise_equals_tape(self, rng):
        from repro.rl.policy import ActorCritic

        policy = ActorCritic(state_dim=16, num_actions=9, hidden_sizes=(32, 32), rng=rng)
        states = rng.normal(size=(8, 16))
        masks = rng.random(size=(8, 9)) < 0.6
        masks[:, 0] = True  # every row keeps at least one legal action

        dist_t, values_t = policy(Tensor(states), masks)
        with no_grad():
            dist_f, values_f = policy(Tensor(states), masks)
        assert np.array_equal(dist_t.log_probs.data, dist_f.log_probs.data)
        assert np.array_equal(values_t.data, values_f.data)

    def test_full_forward_builds_zero_tape_nodes(self, aam_setup, rng):
        """A policy + AAM forward under no_grad never touches the tape."""
        from repro.rl.policy import ActorCritic

        model, plans = aam_setup
        policy = ActorCritic(state_dim=32, num_actions=9, rng=rng)
        with profile.profile() as prof:
            with no_grad():
                vecs = model.state_network.statevecs(
                    plans, np.zeros(len(plans))
                )
                dist, values = policy(Tensor(vecs), None)
                scores = model.predict_scores_from_statevecs(vecs, vecs)
        assert prof.tape_nodes == 0
        assert prof.inference_tensors > 0
        assert values.shape == (len(plans),)
        assert len(scores) == len(plans)

    def test_tape_counter_is_live(self, rng):
        """Sanity: the same forward *with* grads does build tape nodes."""
        from repro.rl.policy import ActorCritic

        policy = ActorCritic(state_dim=8, num_actions=4, rng=rng)
        with profile.profile() as prof:
            dist, values = policy(Tensor(rng.normal(size=(3, 8))), None)
        assert prof.tape_nodes > 0
