"""Concurrent serving: thread-safe OptimizerService + multi-tenant groups.

The contracts under test:

* N client threads submitting a shuffled workload through a *started*
  service receive plans bitwise-identical to the sequential
  single-threaded path — for the local AND the sharded backend (engine
  results are pure functions of the dataset; only ordering/telemetry may
  differ);
* a ``ServiceGroup`` with >= 2 tenants routes every tenant through one
  shared sharded pool without desynchronizing it;
* the background flusher honours both triggers (queue size, time) and
  stop() drains; ``wait`` blocks on a per-ticket event and times out
  loudly;
* regression coverage for the three PR-4 bugfixes: memo overwrite must
  not evict, evicted tickets raise ``TicketEvictedError`` (not "unknown
  ticket"), and ``stats()`` counters stay consistent on every path.

Every blocking call in this module carries a timeout, and an autouse
watchdog dumps all stacks and kills the process if a test wedges — a
deadlocked flusher must fail fast, not hang tier-1.
"""

from __future__ import annotations

import faulthandler
import os
import threading

import numpy as np
import pytest

from repro.api import (
    FossConfig,
    FossSession,
    OptimizerService,
    ServiceGroup,
    TicketEvictedError,
)
from repro.core.aam import AAMConfig
from repro.engine.backend import ShardedBackend
from repro.optimizer.plans import plan_signature

# Per-test deadlock guard: generous against 1-CPU CI, tiny against a hang.
WATCHDOG_S = 180.0
# Bound for every in-test blocking wait; well under the watchdog.
WAIT_S = 120.0
CLIENT_THREADS = 4


def _watchdog_fire() -> None:  # pragma: no cover - only on deadlock
    faulthandler.dump_traceback()
    os._exit(2)


@pytest.fixture(autouse=True)
def deadlock_watchdog():
    """Fail fast (with stacks) instead of hanging the suite on a deadlock."""
    timer = threading.Timer(WATCHDOG_S, _watchdog_fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


def tiny_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=8,
        bootstrap_episodes=6,
        aam_retrain_threshold=40,
        random_sample_episodes=1,
        validation_budget=5,
        seed=33,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


@pytest.fixture(scope="module")
def api_session(job_workload) -> FossSession:
    """An untrained (deterministically initialized) session over JOB."""
    return FossSession.open(workload=job_workload, config=tiny_config())


@pytest.fixture(scope="module")
def sharded_session(job_workload):
    session = FossSession.open(
        workload=job_workload, config=tiny_config(engine_workers=2)
    )
    assert isinstance(session.backend, ShardedBackend)
    yield session
    session.close()


def shuffled_requests(workload, unique: int = 6, copies: int = 3, seed: int = 0):
    """A shuffled serving trace: ``unique`` distinct queries, repeated."""
    sqls = [wq.sql for wq in workload.train[:unique]] * copies
    rng = np.random.default_rng(seed)
    return [sqls[i] for i in rng.permutation(len(sqls))]


def reference_signatures(session, sqls):
    """sql -> plan signature via a fresh sequential, unstarted service."""
    service = session.service()
    return {sql: plan_signature(service.optimize_sql(sql).plan) for sql in set(sqls)}


def run_concurrent_clients(service, sqls, num_threads: int = CLIENT_THREADS):
    """Drive the service from ``num_threads`` submit/wait client threads."""
    results = [None] * len(sqls)
    errors = []

    def client(thread_index: int) -> None:
        try:
            for i in range(thread_index, len(sqls), num_threads):
                ticket = service.submit(sqls[i])
                results[i] = service.wait(ticket, timeout=WAIT_S)
        except Exception as exc:  # surfaced below — a client must not die silently
            errors.append((thread_index, repr(exc)))

    threads = [
        threading.Thread(target=client, args=(t,), daemon=True)
        for t in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT_S)
    assert not any(thread.is_alive() for thread in threads), "client threads hung"
    assert not errors, f"client threads failed: {errors}"
    assert all(result is not None for result in results)
    return results


# ----------------------------------------------------------------------
# concurrency parity: threaded == sequential, local and sharded
# ----------------------------------------------------------------------
class TestConcurrentParity:
    def test_threaded_equals_sequential_local(self, api_session):
        sqls = shuffled_requests(api_session.workload)
        expected = reference_signatures(api_session, sqls)

        service = api_session.service(max_batch_size=4)
        with service.start(flush_interval_ms=2.0):
            results = run_concurrent_clients(service, sqls)
        assert all(r.ok for r in results)
        assert [plan_signature(r.plan.plan) for r in results] == [
            expected[sql] for sql in sqls
        ]
        stats = service.stats()
        assert stats["requests"] == len(sqls)
        assert stats["requests"] == stats["served"] + stats["failures"]
        assert stats["failures"] == 0
        assert stats["pending"] == 0

    def test_threaded_equals_sequential_sharded(self, api_session, sharded_session):
        sqls = shuffled_requests(sharded_session.workload, unique=5, copies=2)
        # The local in-process backend is the ground truth the pool must match.
        expected = reference_signatures(api_session, sqls)

        service = sharded_session.service(max_batch_size=4)
        with service.start(flush_interval_ms=2.0):
            results = run_concurrent_clients(service, sqls)
        assert all(r.ok for r in results)
        assert [plan_signature(r.plan.plan) for r in results] == [
            expected[sql] for sql in sqls
        ]

    def test_concurrent_sync_optimize_sql(self, api_session):
        """The synchronous path is thread-safe too (no flusher involved)."""
        sqls = shuffled_requests(api_session.workload, unique=4, copies=2)
        expected = reference_signatures(api_session, sqls)
        service = api_session.service()
        signatures = [None] * len(sqls)
        errors = []

        def client(thread_index: int) -> None:
            try:
                for i in range(thread_index, len(sqls), CLIENT_THREADS):
                    signatures[i] = plan_signature(service.optimize_sql(sqls[i]).plan)
            except Exception as exc:
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=client, args=(t,), daemon=True)
            for t in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT_S)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
        assert signatures == [expected[sql] for sql in sqls]


# ----------------------------------------------------------------------
# multi-tenant: one shared pool, per-tenant sessions/services
# ----------------------------------------------------------------------
class TestServiceGroup:
    def test_two_tenants_share_one_pool(self, job_workload, api_session):
        sqls = shuffled_requests(job_workload, unique=4, copies=2)
        expected = reference_signatures(api_session, sqls)

        with ServiceGroup.open(
            workload=job_workload,
            tenants=("alpha", "beta"),
            config=tiny_config(),
            engine_workers=2,
        ) as group:
            assert group.tenants == ["alpha", "beta"]
            assert isinstance(group.backend, ShardedBackend)
            # One pool: both tenant sessions hold the very same backend.
            assert group.session("alpha").backend is group.backend
            assert group.session("beta").backend is group.backend

            group.start(flush_interval_ms=2.0)
            outcomes = {}
            errors = []

            def tenant_client(tenant: str) -> None:
                try:
                    tickets = [group.submit(tenant, sql) for sql in sqls]
                    outcomes[tenant] = [
                        group.wait(tenant, ticket, timeout=WAIT_S) for ticket in tickets
                    ]
                except Exception as exc:
                    errors.append((tenant, repr(exc)))

            threads = [
                threading.Thread(target=tenant_client, args=(tenant,), daemon=True)
                for tenant in group.tenants
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT_S)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, errors

            # Both tenants' concurrent traffic over the shared pool still
            # yields the sequential local-backend plans: no pipe
            # desynchronization, no cross-tenant contamination.
            for tenant in ("alpha", "beta"):
                assert all(r.ok for r in outcomes[tenant])
                assert [plan_signature(r.plan.plan) for r in outcomes[tenant]] == [
                    expected[sql] for sql in sqls
                ]

            # Tenant isolation: each service counted only its own traffic.
            stats = group.stats()
            for tenant in ("alpha", "beta"):
                assert stats[tenant]["requests"] == len(sqls)
                assert stats[tenant]["requests"] == (
                    stats[tenant]["served"] + stats[tenant]["failures"]
                )
            assert stats["backend"]["workers"] == 2
            group.stop()

    def test_unknown_tenant_raises(self, job_workload):
        with ServiceGroup.open(
            workload=job_workload, tenants=("solo",), config=tiny_config()
        ) as group:
            with pytest.raises(KeyError, match="unknown tenant"):
                group.service("nope")

    def test_duplicate_or_empty_tenants_rejected(self, job_workload):
        with pytest.raises(ValueError, match="unique"):
            ServiceGroup.open(
                workload=job_workload, tenants=("a", "a"), config=tiny_config()
            )
        with pytest.raises(ValueError, match="at least one tenant"):
            ServiceGroup.open(workload=job_workload, tenants=(), config=tiny_config())
        with pytest.raises(ValueError, match="reserved"):
            ServiceGroup.open(
                workload=job_workload, tenants=("backend",), config=tiny_config()
            )


# ----------------------------------------------------------------------
# flusher lifecycle
# ----------------------------------------------------------------------
class TestFlusherLifecycle:
    def test_time_triggered_flush(self, api_session):
        """Submissions resolve via the timer with no size trigger and no
        manual flush."""
        sqls = shuffled_requests(api_session.workload, unique=3, copies=1)
        service = api_session.service(max_batch_size=100)
        service.start(flush_interval_ms=10.0)
        try:
            tickets = [service.submit(sql) for sql in sqls]
            results = [service.wait(t, timeout=WAIT_S) for t in tickets]
        finally:
            service.stop()
        assert all(r.ok for r in results)
        assert service.stats()["pending"] == 0
        assert service.stats()["batches"] >= 1

    def test_flush_respects_max_batch_size_under_burst(self, api_session):
        """A burst that outruns the flusher still flushes in capped slices."""
        sqls = [wq.sql for wq in api_session.workload.train[:6]]  # distinct
        service = api_session.service(max_batch_size=2)
        service.start(flush_interval_ms=20.0)
        try:
            tickets = [service.submit(sql) for sql in sqls]
            results = [service.wait(t, timeout=WAIT_S) for t in tickets]
        finally:
            service.stop()
        assert all(r.ok for r in results)
        stats = service.stats()
        # 6 distinct queries through slices of <= 2: never one giant batch.
        assert stats["max_batch_occupancy"] <= 2
        assert stats["batches"] >= 3

    def test_start_stop_idempotent(self, api_session):
        service = api_session.service()
        assert not service.started
        service.stop()  # stop before start is a no-op
        service.start()
        assert service.started
        service.start()  # second start is a no-op
        service.stop()
        service.stop()
        assert not service.started

    def test_stop_drains_pending(self, api_session):
        sql = api_session.workload.train[0].sql
        service = api_session.service(max_batch_size=100)
        # A huge interval: the timer will not fire within the test, so the
        # drain below is attributable to stop() alone.
        service.start(flush_interval_ms=60_000.0)
        ticket = service.submit(sql)
        with pytest.raises(TimeoutError):
            service.wait(ticket, timeout=0.2)
        service.stop()
        assert service.result(ticket).ok

    def test_wait_resolves_failed_tickets_immediately(self, api_session):
        service = api_session.service()
        ticket = service.submit("definitely not sql (")
        result = service.wait(ticket, timeout=WAIT_S)
        assert not result.ok
        assert result.status == "failed"

    def test_wait_without_flusher_flushes_inline(self, api_session):
        sql = api_session.workload.train[0].sql
        service = api_session.service(max_batch_size=100)
        ticket = service.submit(sql)
        assert service.wait(ticket, timeout=WAIT_S).ok  # no flusher running


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------
class TestMemoOverwriteRegression:
    def test_rememoize_existing_key_does_not_evict(self, api_session):
        sqls = [wq.sql for wq in api_session.workload.train[:2]]
        service = api_session.service(memo_capacity=2)
        plan_a = service.optimize_sql(sqls[0])
        plan_b = service.optimize_sql(sqls[1])
        assert service.stats()["memo_size"] == 2
        sig_b = service.backend.sql(sqls[1]).signature()
        # Re-memoizing a signature already present must overwrite in place;
        # the old behaviour popped the (unrelated) oldest entry first.
        service._memoize(sig_b, plan_b)
        assert service.stats()["memo_size"] == 2
        first = service.stats()["cache_hits"]
        service.optimize_sql(sqls[0])  # still cached — nothing was evicted
        service.optimize_sql(sqls[1])
        assert service.stats()["cache_hits"] == first + 2
        assert plan_signature(service.optimize_sql(sqls[0]).plan) == plan_signature(
            plan_a.plan
        )


class TestTicketEviction:
    def test_evicted_ticket_raises_typed_error(self, api_session):
        sqls = shuffled_requests(api_session.workload, unique=4, copies=1)
        # Every submit flushes inline (batch size 1); capacity 2 keeps only
        # the last two outcomes, so the first two age out.
        service = api_session.service(max_batch_size=1, results_capacity=2)
        tickets = [service.submit(sql) for sql in sqls]
        assert service.result(tickets[-1]).ok
        assert service.result(tickets[-2]).ok
        with pytest.raises(TicketEvictedError, match="aged out"):
            service.result(tickets[0])
        assert service.stats()["results_evicted"] == 2
        # Evicted is a ValueError subclass (back-compat), but distinct from
        # the never-issued case, which stays "unknown ticket".
        assert issubclass(TicketEvictedError, ValueError)
        with pytest.raises(ValueError, match="unknown ticket"):
            service.result(12_345)

    def test_wait_on_evicted_ticket_raises(self, api_session):
        sqls = shuffled_requests(api_session.workload, unique=3, copies=1)
        service = api_session.service(max_batch_size=1, results_capacity=1)
        tickets = [service.submit(sql) for sql in sqls]
        with pytest.raises(TicketEvictedError):
            service.wait(tickets[0], timeout=WAIT_S)
        assert service.wait(tickets[-1], timeout=WAIT_S).ok


class TestStatsConsistency:
    def test_counters_consistent_across_mixed_paths(self, api_session):
        sqls = [wq.sql for wq in api_session.workload.train[:3]]
        bad_sql = "SELECT COUNT(*) FROM no_such_table AS x WHERE x.c = 1"
        service = api_session.service(max_batch_size=100)

        # Sync miss warms the memo; sync failure counts once.
        service.optimize_sql(sqls[0])
        with pytest.raises(Exception):
            service.optimize_sql(bad_sql)

        # One flush mixing: a memo hit, an in-flight duplicate, two misses,
        # and a binding failure (failed at submit, never queued).
        tickets = [
            service.submit(sqls[0]),  # memo hit
            service.submit(sqls[1]),  # miss
            service.submit(sqls[1]),  # duplicate of an in-flight miss -> hit
            service.submit(sqls[2]),  # miss
            service.submit(bad_sql),  # binding failure
        ]
        service.flush()
        results = [service.result(t) for t in tickets]

        stats = service.stats()
        assert stats["requests"] == stats["served"] + stats["failures"]
        assert stats["requests"] == 7
        assert stats["served"] == 5
        assert stats["failures"] == 2
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 3
        assert stats["cache_hit_rate"] == pytest.approx(2 / 5)
        assert stats["memo_size"] == 3
        assert stats["pending"] == 0
        # Per-ticket flags agree with the aggregate counters.
        assert [r.ok for r in results] == [True, True, True, True, False]
        assert [r.cached for r in results[:4]] == [True, False, True, False]

    def test_counters_consistent_under_threads(self, api_session):
        sqls = shuffled_requests(api_session.workload, unique=4, copies=3)
        service = api_session.service(max_batch_size=3)
        with service.start(flush_interval_ms=2.0):
            run_concurrent_clients(service, sqls)
        stats = service.stats()
        assert stats["requests"] == len(sqls)
        assert stats["requests"] == stats["served"] + stats["failures"]
        assert stats["failures"] == 0
        # 4 unique queries: everything beyond the first resolution of each
        # signature must have been served from the memo or an in-flight
        # duplicate.  (Concurrent flushes may both miss the same signature,
        # so the hit count can dip below len - unique, but served is exact.)
        assert stats["cache_hits"] + stats["cache_misses"] == len(sqls)
        assert stats["cache_misses"] >= 4
