"""The public API layer: FossSession, OptimizerService, the registry.

Covers the serving contracts the facade promises:

* SQL text -> parse/bind -> plan -> (optional) execute, through the
  EngineBackend;
* queued micro-batched serving returns plans identical to one-at-a-time
  serving, for local and sharded backends;
* session save/load round-trips to a bitwise-identical optimizer;
* optimizers are constructed by name through the registry;
* failures surface as one typed OptimizeError (failed ticket on the
  queued path);
* legacy import paths still resolve but warn.
"""

import sys

import numpy as np
import pytest

import repro
from repro.api import (
    FossConfig,
    FossSession,
    OptimizeError,
    OptimizerService,
    PlanTicket,
    available_optimizers,
    create_optimizer,
    register_optimizer,
)
from repro.core.aam import AAMConfig
from repro.engine.backend import ShardedBackend
from repro.optimizer.plans import plan_signature


def tiny_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=8,
        bootstrap_episodes=6,
        aam_retrain_threshold=40,
        random_sample_episodes=1,
        validation_budget=5,
        seed=33,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


@pytest.fixture(scope="module")
def api_session(job_workload) -> FossSession:
    """An untrained (deterministically initialized) session over JOB."""
    return FossSession.open(workload=job_workload, config=tiny_config())


@pytest.fixture()
def service(api_session) -> OptimizerService:
    return api_session.service()


def serving_sqls(workload, count: int = 5):
    return [wq.sql for wq in workload.train[:count]]


# ----------------------------------------------------------------------
# SQL-text-in / plan-out pipeline
# ----------------------------------------------------------------------
class TestOptimizeSql:
    def test_sql_text_to_plan(self, api_session, service):
        wq = api_session.workload.train[0]
        served = service.optimize_sql(wq.sql)
        direct = api_session.optimizer().optimize(wq.query)
        assert plan_signature(served.plan) == plan_signature(direct.plan)
        assert served.optimization_ms >= 0.0

    def test_execute_sql_runs_plan_through_backend(self, api_session, service):
        wq = api_session.workload.train[0]
        result = service.execute_sql(wq.sql)
        expected = api_session.backend.execute(
            wq.query, service.optimize_sql(wq.sql).plan
        )
        assert result.latency_ms == expected.latency_ms
        assert result.output_rows == expected.output_rows

    def test_optimizer_accepts_raw_sql_text(self, api_session):
        wq = api_session.workload.train[0]
        from_text = api_session.optimizer().optimize(wq.sql)
        from_query = api_session.optimizer().optimize(wq.query)
        assert plan_signature(from_text.plan) == plan_signature(from_query.plan)


# ----------------------------------------------------------------------
# micro-batched serving == one-at-a-time serving
# ----------------------------------------------------------------------
class TestBatchedServing:
    def test_batched_equals_single_local(self, api_session):
        sqls = serving_sqls(api_session.workload)
        sqls.append(sqls[0])  # a duplicate rides the same flush

        batched = api_session.service(max_batch_size=len(sqls))
        tickets = [batched.submit(sql) for sql in sqls]
        batched_results = [batched.result(t) for t in tickets]
        assert all(r.ok for r in batched_results)

        single = api_session.service()
        single_plans = [single.optimize_sql(sql) for sql in sqls]

        assert [plan_signature(r.plan.plan) for r in batched_results] == [
            plan_signature(p.plan) for p in single_plans
        ]
        # The duplicate resolved from the in-flight batch, not a second run,
        # and its per-ticket flag agrees with the aggregate hit counter.
        stats = batched.stats()
        assert stats["batches"] == 1
        assert stats["mean_batch_occupancy"] == len(sqls) - 1
        assert stats["cache_hits"] == 1
        assert [r.cached for r in batched_results] == [False] * (len(sqls) - 1) + [True]

    def test_submit_flushes_at_max_batch_size(self, api_session):
        sqls = serving_sqls(api_session.workload, 4)
        service = api_session.service(max_batch_size=2)
        tickets = [service.submit(sql) for sql in sqls]
        # Two full batches flushed on submit; nothing left pending.
        assert service.stats()["pending"] == 0
        assert service.stats()["batches"] == 2
        assert all(service.result(t).ok for t in tickets)

    def test_memo_eviction_during_flush_keeps_tickets(self, api_session):
        # A memo-hit plan snapshotted at flush start must survive being
        # evicted by the same flush's own misses.
        sqls = serving_sqls(api_session.workload, 4)
        service = api_session.service(max_batch_size=100, memo_capacity=2)
        service.optimize_sql(sqls[0])  # warm the memo
        tickets = [service.submit(sql) for sql in sqls]
        results = [service.result(t) for t in tickets]
        assert all(r.ok for r in results)
        assert results[0].cached

    def test_memo_capacity_zero_disables_caching(self, api_session):
        sql = api_session.workload.train[0].sql
        service = api_session.service(memo_capacity=0)
        first = service.optimize_sql(sql)
        second = service.optimize_sql(sql)
        assert plan_signature(first.plan) == plan_signature(second.plan)
        stats = service.stats()
        assert stats["cache_hits"] == 0
        assert stats["memo_size"] == 0

    def test_batched_equals_single_sharded(self, job_workload, api_session):
        sqls = serving_sqls(job_workload)
        local_plans = [
            plan_signature(api_session.service().optimize_sql(sql).plan) for sql in sqls
        ]
        sharded_session = FossSession.open(
            workload=job_workload, config=tiny_config(engine_workers=2)
        )
        try:
            assert isinstance(sharded_session.backend, ShardedBackend)
            batched = sharded_session.service(max_batch_size=len(sqls))
            tickets = [batched.submit(sql) for sql in sqls]
            sharded_batched = [
                plan_signature(batched.result(t).plan.plan) for t in tickets
            ]
            single = sharded_session.service()
            sharded_single = [
                plan_signature(single.optimize_sql(sql).plan) for sql in sqls
            ]
        finally:
            sharded_session.close()
        # Queued micro-batched == one-at-a-time, and both == the local backend.
        assert sharded_batched == sharded_single == local_plans


# ----------------------------------------------------------------------
# session persistence
# ----------------------------------------------------------------------
class TestSessionPersistence:
    def test_save_load_roundtrip_bitwise_identical(self, job_workload, tmp_path):
        session = FossSession.open(workload=job_workload, config=tiny_config())
        session.trainer().bootstrap()  # train the AAM away from its init
        queries = [wq.query for wq in job_workload.test[:4]]
        before = [
            plan_signature(p.plan) for p in session.optimizer().optimize_many(queries)
        ]

        session.save(str(tmp_path / "doctor"))
        loaded = FossSession.load(str(tmp_path / "doctor"))
        after = [
            plan_signature(p.plan) for p in loaded.optimizer().optimize_many(queries)
        ]
        assert after == before
        assert loaded.config == session.config
        assert loaded.workload.name == session.workload.name

    def test_save_requires_spec(self, job_workload, tmp_path):
        import dataclasses

        specless = dataclasses.replace(job_workload, spec=None)
        session = FossSession.open(workload=specless, config=tiny_config())
        with pytest.raises(ValueError, match="WorkloadSpec"):
            session.save(str(tmp_path / "nope"))

    def test_save_records_dataset_fingerprint(self, job_workload, tmp_path):
        import json

        from repro.engine.database import dataset_fingerprint

        session = FossSession.open(workload=job_workload, config=tiny_config())
        session.save(str(tmp_path / "doctor"))
        with open(tmp_path / "doctor" / "session.json") as handle:
            manifest = json.load(handle)
        # crc32-based and deterministic: recomputing over the same dataset
        # (and over a rebuild from the same spec) gives the same value.
        assert manifest["dataset_fingerprint"] == dataset_fingerprint(job_workload.dataset)
        assert manifest["dataset_fingerprint"].startswith("crc32:")
        rebuilt = job_workload.spec.build_dataset()
        assert dataset_fingerprint(rebuilt) == manifest["dataset_fingerprint"]

    def test_load_fails_loudly_on_fingerprint_mismatch(self, job_workload, tmp_path):
        import json

        session = FossSession.open(workload=job_workload, config=tiny_config())
        session.save(str(tmp_path / "doctor"))
        manifest_path = tmp_path / "doctor" / "session.json"
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        # Simulate datagen drift: the rebuilt dataset no longer matches the
        # fingerprint recorded at save time.
        manifest["dataset_fingerprint"] = "crc32:deadbeef:rows=1"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            FossSession.load(str(tmp_path / "doctor"))

    def test_load_rejects_injected_backend_with_wrong_dataset(self, job_workload, tmp_path):
        from repro.workloads.base import build_workload_by_name

        session = FossSession.open(workload=job_workload, config=tiny_config())
        session.save(str(tmp_path / "doctor"))
        # A backend over a different dataset than the manifest records: the
        # restored model must not silently plan against it.
        other = build_workload_by_name("job", scale=0.02, seed=9)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            FossSession.load(str(tmp_path / "doctor"), backend=other.database)

    def test_load_tolerates_manifest_without_fingerprint(self, job_workload, tmp_path):
        import json

        session = FossSession.open(workload=job_workload, config=tiny_config())
        session.save(str(tmp_path / "doctor"))
        manifest_path = tmp_path / "doctor" / "session.json"
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["dataset_fingerprint"]  # a pre-PR-4 manifest
        manifest_path.write_text(json.dumps(manifest))
        loaded = FossSession.load(str(tmp_path / "doctor"))
        assert loaded.workload.name == session.workload.name


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_methods_registered(self):
        names = available_optimizers()
        for expected in ("foss", "postgres", "postgresql", "bao", "balsa", "loger", "hybridqo"):
            assert expected in names

    def test_create_every_builtin(self, api_session):
        wq = api_session.workload.train[0]
        for name in ("foss", "postgres", "bao", "balsa", "loger", "hybridqo"):
            optimizer = create_optimizer(name, api_session)
            plan = optimizer.optimize(wq.query)
            assert plan.plan is not None, name

    def test_postgres_is_expert_passthrough(self, api_session):
        wq = api_session.workload.train[0]
        optimizer = create_optimizer("postgresql", api_session)
        expert = api_session.backend.plan(wq.query).plan
        assert plan_signature(optimizer.optimize(wq.query).plan) == plan_signature(expert)

    def test_custom_registration(self, api_session):
        calls = []

        @register_optimizer("test-custom")
        def _factory(session, flavor="plain"):
            calls.append(flavor)
            return create_optimizer("postgres", session)

        try:
            optimizer = create_optimizer("TEST-CUSTOM", api_session, flavor="spicy")
            assert calls == ["spicy"]
            assert hasattr(optimizer, "optimize")
        finally:
            from repro.api import registry

            registry._REGISTRY.pop("test-custom", None)

    def test_unknown_name_raises(self, api_session):
        with pytest.raises(ValueError, match="unknown optimizer"):
            create_optimizer("no-such-method", api_session)


# ----------------------------------------------------------------------
# typed failures
# ----------------------------------------------------------------------
class TestOptimizeError:
    BAD_SQLS = (
        "this is not sql at all (",
        "SELECT COUNT(*) FROM no_such_table AS x WHERE x.col = 1",
        "SELECT COUNT(*) FROM title AS t WHERE t.no_such_column = 1",
    )

    def test_optimizer_raises_single_typed_error(self, api_session):
        optimizer = api_session.optimizer()
        for sql in self.BAD_SQLS:
            with pytest.raises(OptimizeError):
                optimizer.optimize(sql)

    def test_optimize_sql_raises(self, service):
        with pytest.raises(OptimizeError):
            service.optimize_sql(self.BAD_SQLS[0])

    def test_submit_maps_to_failed_ticket(self, service):
        ticket = service.submit(self.BAD_SQLS[1])
        assert isinstance(ticket, PlanTicket)
        result = service.result(ticket)
        assert not result.ok
        assert result.status == "failed"
        assert "no_such_table" in result.error
        assert service.stats()["failures"] == 1

    def test_unknown_ticket_raises(self, service):
        with pytest.raises(ValueError, match="unknown ticket"):
            service.result(12345)


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
class TestServiceStats:
    def test_stats_track_cache_and_latency(self, api_session):
        service = api_session.service()
        sqls = serving_sqls(api_session.workload, 3)
        for sql in sqls:
            service.optimize_sql(sql)
        for sql in sqls:  # all repeats: memo hits
            service.optimize_sql(sql)
        stats = service.stats()
        assert stats["served"] == 6
        assert stats["cache_hits"] == 3
        assert stats["cache_misses"] == 3
        assert stats["cache_hit_rate"] == pytest.approx(0.5)
        assert stats["memo_size"] == 3
        assert stats["latency_p50_ms"] >= 0.0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"]

    def test_failures_counted_once(self, api_session):
        # A request that fails is a failure only — not also a cache miss —
        # so requests == served + failures holds on every path.
        service = api_session.service()
        with pytest.raises(OptimizeError):
            service.optimize_sql("SELECT COUNT(*) FROM no_such_table AS x WHERE x.c = 1")
        service.result(service.submit("garbage ("))
        stats = service.stats()
        assert stats["failures"] == 2
        assert stats["served"] == 0
        assert stats["cache_misses"] == 0
        assert stats["requests"] == stats["served"] + stats["failures"]


# ----------------------------------------------------------------------
# deprecation shims
# ----------------------------------------------------------------------
class TestDeprecations:
    def test_rl_buffer_shim_warns_and_resolves(self):
        sys.modules.pop("repro.rl.buffer", None)
        with pytest.warns(DeprecationWarning, match="repro.rl.buffer is deprecated"):
            import repro.rl.buffer as shim
        from repro.core.buffer import Batch, RolloutBuffer, Transition

        assert shim.Transition is Transition
        assert shim.Batch is Batch
        assert shim.RolloutBuffer is RolloutBuffer

    def test_top_level_trainer_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="repro.FossTrainer is deprecated"):
            cls = repro.FossTrainer
        from repro.core.trainer import FossTrainer

        assert cls is FossTrainer

    def test_top_level_optimizer_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="repro.FossOptimizer is deprecated"):
            cls = repro.FossOptimizer
        from repro.core.inference import FossOptimizer

        assert cls is FossOptimizer

    def test_undeprecated_exports_stay_silent(self, recwarn):
        assert repro.FossConfig is FossConfig
        assert callable(repro.build_workload_by_name)
        assert not [w for w in recwarn.list if issubclass(w.category, DeprecationWarning)]
