"""Planner (Algorithm 1), environments, buffer, and training-loop tests."""

import numpy as np
import pytest

from repro.core.aam import AAMConfig
from repro.core.buffer import ExecutionBuffer
from repro.core.icp import IncompletePlan
from repro.core.planner import PlannerConfig
from repro.core.reward import AdvantageFunction
from repro.core.simenv import DYNAMIC_TIMEOUT_FACTOR, RealEnvironment
from repro.core.trainer import FossConfig, FossTrainer
from repro.optimizer.plans import plan_signature
from repro.rl.ppo import PPOConfig


def small_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=12,
        bootstrap_episodes=8,
        aam_retrain_threshold=30,
        random_sample_episodes=2,
        validation_budget=10,
        seed=5,
        aam=AAMConfig(d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1, ff_hidden=32, epochs=1),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


@pytest.fixture(scope="module")
def trained(request):
    """A minimally-trained FossTrainer shared by read-only tests."""
    workload = request.getfixturevalue("job_workload")
    trainer = FossTrainer(workload, small_config())
    trainer.bootstrap()
    trainer.run_iteration(0)
    return workload, trainer


class TestExecutionBuffer:
    def test_add_and_dedup(self, trained):
        workload, trainer = trained
        query = workload.train[0].query
        plan = workload.database.plan(query).plan
        buffer = ExecutionBuffer()
        assert buffer.add(query, plan, 0, 10.0, False)
        assert not buffer.add(query, plan, 1, 12.0, False)
        assert buffer.num_records() == 1

    def test_reference_set_uses_better_plans(self, trained):
        workload, _ = trained
        query = workload.train[0].query
        db = workload.database
        plan = db.plan(query).plan
        buffer = ExecutionBuffer()
        buffer.add(query, plan, 0, 100.0, False)
        refs = buffer.reference_set(query, original_latency=100.0)
        assert refs.bounties == (0.0, 0.0, 0.0)

    def test_make_samples_filters_double_timeouts(self, trained):
        workload, trainer = trained
        db = workload.database
        query = workload.train[0].query
        original = db.plan(query).plan
        icp = IncompletePlan.extract(original)
        alt_icp = icp.override(1, "merge" if icp.methods[0] != "merge" else "nestloop")
        alt = db.plan_with_hints(query, alt_icp.order, alt_icp.methods).plan
        buffer = ExecutionBuffer()
        buffer.add(query, original, 0, 50.0, True)
        buffer.add(query, alt, 1, 60.0, True)
        samples = buffer.make_aam_samples(
            trainer.encoder, AdvantageFunction(), max_steps=3, rng=np.random.default_rng(0)
        )
        assert samples == []

    def test_samples_emitted_in_both_directions(self, trained):
        workload, trainer = trained
        db = workload.database
        query = workload.train[0].query
        original = db.plan(query).plan
        icp = IncompletePlan.extract(original)
        alt_icp = icp.override(1, "merge" if icp.methods[0] != "merge" else "nestloop")
        alt = db.plan_with_hints(query, alt_icp.order, alt_icp.methods).plan
        buffer = ExecutionBuffer()
        buffer.add(query, original, 0, 50.0, False)
        buffer.add(query, alt, 1, 20.0, False)
        samples = buffer.make_aam_samples(
            trainer.encoder, AdvantageFunction(), max_steps=3, rng=np.random.default_rng(0)
        )
        assert len(samples) == 2
        assert {s.label for s in samples} == {0, 2}  # 60% saving one way, worse the other


class TestRealEnvironment:
    def test_begin_episode_executes_original(self, trained):
        workload, trainer = trained
        buffer = ExecutionBuffer()
        env = RealEnvironment(workload.database, buffer)
        ctx = env.begin_episode(workload.train[1].query)
        assert ctx.original_latency > 0
        assert ctx.timeout_ms == pytest.approx(ctx.original_latency * DYNAMIC_TIMEOUT_FACTOR)
        assert buffer.num_records() == 1

    def test_advantage_scores_latencies(self, trained):
        workload, trainer = trained
        db = workload.database
        buffer = ExecutionBuffer()
        env = RealEnvironment(db, buffer)
        query = workload.train[1].query
        ctx = env.begin_episode(query)
        score = env.advantage(ctx, ctx.original_plan, 0, ctx.original_plan, 1)
        assert score == 0  # identical plans: no advantage


class TestPlannerEpisodes:
    def test_episode_structure(self, trained):
        workload, trainer = trained
        planner = trainer.planners[0]
        query = next(w.query for w in workload.train if w.query.num_tables >= 3)
        episode = planner.run_episode(trainer.sim_env, query)
        assert len(episode.transitions) == trainer.config.max_steps
        assert episode.transitions[-1].done
        assert not episode.transitions[0].done
        assert episode.candidates[0].step == 0

    def test_candidates_are_valid_plans(self, trained):
        workload, trainer = trained
        planner = trainer.planners[0]
        query = next(w.query for w in workload.train if w.query.num_tables >= 4)
        episode = planner.run_episode(trainer.sim_env, query)
        for candidate in episode.candidates:
            assert sorted(candidate.icp.order) == sorted(query.aliases)

    def test_deterministic_episode_repeatable(self, trained):
        workload, trainer = trained
        planner = trainer.planners[0]
        query = next(w.query for w in workload.train if w.query.num_tables >= 3)
        a = planner.run_episode(trainer.sim_env, query, deterministic=True)
        b = planner.run_episode(trainer.sim_env, query, deterministic=True)
        assert plan_signature(a.best_plan) == plan_signature(b.best_plan)

    def test_statevec_cache_invalidation(self, trained):
        workload, trainer = trained
        planner = trainer.planners[0]
        query = workload.train[0].query
        plan = workload.database.plan(query).plan
        planner.statevec(query, plan, 0)
        assert len(planner._statevec_cache) > 0
        planner.notify_aam_updated()
        assert len(planner._statevec_cache) == 0

    def test_penalty_off_config(self, job_workload):
        config = small_config(use_penalty=False)
        assert config.planner.reward.penalty_gamma == 0.0


class TestTrainingLoop:
    def test_bootstrap_fills_buffer_and_trains_aam(self, trained):
        _, trainer = trained
        assert trainer.buffer.num_records() > 0
        assert trainer.aam_accuracy > 0.0

    def test_iteration_produces_episodes(self, trained):
        _, trainer = trained
        stats = trainer.history[0]
        assert stats.episodes == trainer.config.episodes_per_update

    def test_multi_agent_configs_differ(self, job_workload):
        trainer = FossTrainer(job_workload, small_config(num_agents=2))
        assert len(trainer.planners) == 2
        lr0 = trainer.planners[0].config.ppo.lr
        lr1 = trainer.planners[1].config.ppo.lr
        assert lr0 != lr1

    def test_off_simulated_uses_real_env(self, job_workload):
        trainer = FossTrainer(job_workload, small_config(use_simulated=False, episodes_per_update=4))
        trainer.bootstrap()
        before = trainer.buffer.total_added
        trainer.run_iteration(0)
        # Real-env episodes execute plans, so the buffer must grow.
        assert trainer.buffer.total_added > before

    def test_validation_queue_drained(self, trained):
        _, trainer = trained
        # After an iteration the queue was drained into the budgeted runs.
        assert len(trainer.sim_env.validation_queue) == 0

    def test_make_optimizer_roundtrip(self, trained):
        workload, trainer = trained
        optimizer = trainer.make_optimizer()
        wq = workload.test[0]
        result = optimizer.optimize(wq.query)
        assert result.optimization_ms >= 0
        assert sorted(IncompletePlan.extract(result.plan).order) == sorted(wq.query.aliases)

    def test_optimizer_plan_executes(self, trained):
        workload, trainer = trained
        optimizer = trainer.make_optimizer()
        wq = workload.test[1]
        plan = optimizer.optimize(wq.query).plan
        result = workload.database.execute(wq.query, plan)
        assert result.latency_ms > 0
