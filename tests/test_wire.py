"""Wire-format robustness: the framing layer must fail loudly, never lie.

The contracts (see :mod:`repro.engine.wire`): a frame round-trips bytes
exactly; a clean EOF at a frame boundary reads as ``None``; truncation
mid-frame, a foreign magic and a crc mismatch raise
``FrameCorruptionError`` before any payload byte is interpreted; a
declared length above the cap raises ``FrameTooLargeError`` without
buffering the payload; and the crc chaining used by both the wire format
and the dataset fingerprint is length-prefixed so field boundaries cannot
collide.
"""

from __future__ import annotations

import io

import pytest

from repro.engine.wire import (
    HEADER_SIZE,
    FrameCorruptionError,
    FrameTooLargeError,
    crc32_chain,
    encode_frame,
    read_frame,
    write_frame,
)


def roundtrip(payload: bytes, **kwargs) -> bytes:
    return read_frame(io.BytesIO(encode_frame(payload, **kwargs)), **kwargs)


class TestRoundTrip:
    def test_payload_roundtrips_bitwise(self):
        for payload in (b"", b"x", b"hello world", bytes(range(256)) * 100):
            assert roundtrip(payload) == payload

    def test_multiple_frames_on_one_stream(self):
        stream = io.BytesIO()
        payloads = [b"first", b"", b"third frame"]
        for payload in payloads:
            write_frame(stream, payload)
        stream.seek(0)
        assert [read_frame(stream) for _ in payloads] == payloads
        assert read_frame(stream) is None  # clean EOF at the boundary

    def test_clean_eof_is_none(self):
        assert read_frame(io.BytesIO(b"")) is None


class TestCorruption:
    def test_truncated_header(self):
        frame = encode_frame(b"payload")
        for cut in (1, HEADER_SIZE - 1):
            with pytest.raises(FrameCorruptionError, match="truncated frame header"):
                read_frame(io.BytesIO(frame[:cut]))

    def test_truncated_payload(self):
        frame = encode_frame(b"payload bytes")
        with pytest.raises(FrameCorruptionError, match="truncated frame payload"):
            read_frame(io.BytesIO(frame[: HEADER_SIZE + 4]))

    def test_corrupted_payload_crc_mismatch(self):
        frame = bytearray(encode_frame(b"sensitive payload"))
        frame[HEADER_SIZE + 3] ^= 0xFF  # flip one payload byte
        with pytest.raises(FrameCorruptionError, match="crc mismatch"):
            read_frame(io.BytesIO(bytes(frame)))

    def test_corrupted_crc_field(self):
        frame = bytearray(encode_frame(b"sensitive payload"))
        frame[HEADER_SIZE - 1] ^= 0x01  # flip one checksum bit
        with pytest.raises(FrameCorruptionError, match="crc mismatch"):
            read_frame(io.BytesIO(bytes(frame)))

    def test_bad_magic(self):
        frame = b"XXXX" + encode_frame(b"payload")[4:]
        with pytest.raises(FrameCorruptionError, match="magic"):
            read_frame(io.BytesIO(frame))


class TestOversize:
    def test_reader_rejects_oversized_declared_length(self):
        frame = encode_frame(b"x" * 100)
        with pytest.raises(FrameTooLargeError):
            read_frame(io.BytesIO(frame), max_frame_bytes=64)

    def test_writer_refuses_oversized_payload(self):
        stream = io.BytesIO()
        with pytest.raises(FrameTooLargeError):
            write_frame(stream, b"x" * 100, max_frame_bytes=64)
        assert stream.getvalue() == b"", "nothing may reach the wire"

    def test_too_large_is_a_corruption_error(self):
        # Callers that only catch FrameCorruptionError still see the cap.
        assert issubclass(FrameTooLargeError, FrameCorruptionError)


class TestCrcChain:
    def test_field_boundaries_do_not_collide(self):
        # The raison d'être of length prefixing: same concatenation,
        # different field split, different checksum.
        a = crc32_chain(crc32_chain(0, b"ab"), b"c")
        b = crc32_chain(crc32_chain(0, b"a"), b"bc")
        assert a != b

    def test_deterministic(self):
        assert crc32_chain(7, b"field") == crc32_chain(7, b"field")
