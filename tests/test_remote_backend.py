"""The remote engine subsystem: parity, robustness, lifecycle.

The contracts under test (see :mod:`repro.engine.remote`):

* plans are **bitwise-identical** across ``LocalBackend``,
  ``ShardedBackend`` and ``RemoteBackend`` — including the batched
  ``*_many`` mirrors — because every backend rebuilds the same dataset
  from the same :class:`WorkloadSpec` (here the server builds its *own*
  engine from the spec, so the wire genuinely separates client and
  server);
* a 2-tenant :class:`ServiceGroup` can share **one** ``RemoteBackend``
  and serve the same plans as local sessions;
* the connect-time fingerprint handshake refuses client/server datagen
  drift; the session manifest records the remote fingerprint and
  :meth:`FossSession.load` re-checks it;
* a dead/restarted server costs a bounded reconnect, then a typed
  ``RemoteEngineError``; a client that disconnects mid-frame costs the
  server nothing but that one connection.

Every blocking call carries a timeout, and an autouse watchdog dumps all
stacks and kills the process if a test wedges — a hung socket must fail
fast, not hang tier-1.
"""

from __future__ import annotations

import faulthandler
import json
import os
import pickle
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.api import FossConfig, FossSession, RequestContext, ServiceGroup
from repro.core.aam import AAMConfig
from repro.core.icp import IncompletePlan
from repro.engine.backend import ShardedBackend, make_backend
from repro.engine.remote import EngineServer, RemoteBackend, RemoteEngineError
from repro.engine.wire import FrameTooLargeError, contexts_to_wire
from repro.optimizer.plans import plan_signature

# Per-test deadlock guard: generous against 1-CPU CI, tiny against a hang.
WATCHDOG_S = 180.0
# Socket timeout for every client in this module; well under the watchdog.
CLIENT_TIMEOUT_S = 60.0


def _watchdog_fire() -> None:  # pragma: no cover - only on deadlock
    faulthandler.dump_traceback()
    os._exit(2)


@pytest.fixture(autouse=True)
def deadlock_watchdog():
    """Fail fast (with stacks) instead of hanging the suite on a hung socket."""
    timer = threading.Timer(WATCHDOG_S, _watchdog_fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


def tiny_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=8,
        bootstrap_episodes=6,
        aam_retrain_threshold=40,
        random_sample_episodes=1,
        validation_budget=5,
        seed=33,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


@pytest.fixture(scope="module")
def server_db(job_workload):
    """The server-side engine: rebuilt from the spec, NOT the client's object."""
    return job_workload.spec.build_database()


@pytest.fixture(scope="module")
def engine_server(server_db):
    with EngineServer(server_db) as server:
        server.start()
        yield server


@pytest.fixture(scope="module")
def remote_backend(engine_server, job_workload):
    with RemoteBackend(
        engine_server.url, database=job_workload.database, timeout_s=CLIENT_TIMEOUT_S
    ) as backend:
        yield backend


# ----------------------------------------------------------------------
# parity: local == sharded == remote, singletons and batches
# ----------------------------------------------------------------------
class TestBackendParity:
    def test_plans_identical_across_all_three_backends(
        self, job_workload, remote_backend
    ):
        local = job_workload.database
        queries = [w.query for w in job_workload.train[:6]]
        local_sigs = [plan_signature(p.plan) for p in local.plan_many(queries)]
        remote_sigs = [plan_signature(p.plan) for p in remote_backend.plan_many(queries)]
        with ShardedBackend(job_workload.spec, 2, database=local) as sharded:
            sharded_sigs = [plan_signature(p.plan) for p in sharded.plan_many(queries)]
        assert remote_sigs == local_sigs
        assert sharded_sigs == local_sigs

    def test_hinted_completion_parity_including_batches(
        self, job_workload, remote_backend
    ):
        local = job_workload.database
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        icp = IncompletePlan.extract(local.plan(query).plan)
        edited = icp.override(1, "merge" if icp.methods[0] != "merge" else "nestloop")
        requests = [
            (query, icp.order, icp.methods),
            (query, edited.order, edited.methods),
            (query, icp.order, icp.methods),  # repeat: client memo hit
        ]
        remote = remote_backend.plan_with_hints_many(requests)
        singles = [local.plan_with_hints(*request) for request in requests]
        assert [plan_signature(r.plan) for r in remote] == [
            plan_signature(r.plan) for r in singles
        ]
        one = remote_backend.plan_with_hints(query, icp.order, icp.methods)
        assert plan_signature(one.plan) == plan_signature(singles[0].plan)

    def test_execution_parity_and_batches(self, job_workload, remote_backend):
        local = job_workload.database
        query = next(w.query for w in job_workload.train if w.query.num_tables >= 3)
        plan = local.plan(query).plan
        assert (
            remote_backend.execute(query, plan).latency_ms
            == local.execute(query, plan).latency_ms
        )
        batch = [(query, plan, None), (query, plan, 10_000.0)]
        remote_results = remote_backend.execute_many(batch)
        local_results = local.execute_many(batch)
        assert [r.latency_ms for r in remote_results] == [
            r.latency_ms for r in local_results
        ]
        assert remote_backend.original_latency(query) == local.original_latency(query)

    def test_uncached_execute_bypasses_server_cache(self, job_workload, remote_backend):
        query = job_workload.train[0].query
        plan = job_workload.database.plan(query).plan
        before = remote_backend.executions
        first = remote_backend.execute(query, plan, use_cache=False)
        second = remote_backend.execute(query, plan, use_cache=False)
        assert first.latency_ms == second.latency_ms  # virtual time is deterministic
        assert remote_backend.executions >= before + 2, "uncached runs must not cache"

    def test_sql_rpc_served_for_mirrorless_clients(
        self, job_workload, remote_backend
    ):
        wq = job_workload.train[0]
        served = remote_backend._call("sql", (wq.sql, ""))
        assert served.signature() == job_workload.database.sql(wq.sql).signature()

    def test_executions_and_stats_surface(self, job_workload, remote_backend):
        stats = remote_backend.stats()
        assert stats["backend"] == "remote"
        assert stats["url"] == remote_backend.url
        assert stats["server_backend"] == "local"
        query = job_workload.train[1].query
        plan = job_workload.database.plan(query).plan
        before = remote_backend.executions
        remote_backend.execute(query, plan)
        after_miss = remote_backend.executions
        assert after_miss >= before + 1, "server cache miss must count"
        remote_backend.execute(query, plan)
        assert remote_backend.executions == after_miss, "server cache hit must not count"

    def test_server_error_is_typed_and_does_not_poison_connection(
        self, job_workload, remote_backend
    ):
        with pytest.raises(RemoteEngineError, match="unknown engine RPC"):
            remote_backend._call("bogus_rpc", None)
        assert remote_backend.ping()  # same pool still serves


# ----------------------------------------------------------------------
# the api layer over a remote engine
# ----------------------------------------------------------------------
class TestRemoteServing:
    def test_engine_url_selects_remote_backend(self, engine_server, job_workload):
        config = tiny_config(engine_url=engine_server.url)
        with FossSession.open(workload=job_workload, config=config) as session:
            assert isinstance(session.backend, RemoteBackend)
            sql = job_workload.train[0].sql
            remote_plan = plan_signature(session.service().optimize_sql(sql).plan)
        with FossSession.open(workload=job_workload, config=tiny_config()) as local:
            local_plan = plan_signature(local.service().optimize_sql(sql).plan)
        assert remote_plan == local_plan

    def test_two_tenant_group_over_one_shared_remote(
        self, job_workload, remote_backend
    ):
        sqls = [wq.sql for wq in job_workload.train[:3]]
        with FossSession.open(workload=job_workload, config=tiny_config()) as local:
            expected = [
                plan_signature(local.service().optimize_sql(sql).plan) for sql in sqls
            ]
        with ServiceGroup.open(
            workload=job_workload,
            tenants=("alpha", "beta"),
            config=tiny_config(),
            backend=remote_backend,
        ) as group:
            assert group.backend is remote_backend
            for tenant in group.tenants:
                served = [
                    plan_signature(group.optimize_sql(tenant, sql).plan)
                    for sql in sqls
                ]
                assert served == expected, f"tenant {tenant!r} diverged"
            assert group.stats()["backend"]["backend"] == "remote"
        # The group must not close the injected shared backend.
        assert remote_backend.ping()

    def test_manifest_records_remote_fingerprint(
        self, job_workload, remote_backend, tmp_path
    ):
        path = str(tmp_path / "remote-doctor")
        session = FossSession.open(
            workload=job_workload, config=tiny_config(), backend=remote_backend
        )
        session.save(path)
        with open(os.path.join(path, "session.json")) as handle:
            manifest = json.load(handle)
        assert manifest["remote"]["engine_url"] == remote_backend.url
        assert (
            manifest["remote"]["dataset_fingerprint"]
            == remote_backend.remote_fingerprint
            == manifest["dataset_fingerprint"]
        )
        restored = FossSession.load(path, backend=remote_backend)
        sql = job_workload.train[0].sql
        assert plan_signature(
            restored.service().optimize_sql(sql).plan
        ) == plan_signature(session.service().optimize_sql(sql).plan)

    def test_load_rejects_drifted_remote_server(
        self, job_workload, remote_backend, tmp_path
    ):
        path = str(tmp_path / "remote-doctor-drift")
        session = FossSession.open(
            workload=job_workload, config=tiny_config(), backend=remote_backend
        )
        session.save(path)
        # Simulate server-side datagen drift after the save: the local
        # mirror still matches the manifest, but the serving engine doesn't.
        original = remote_backend.remote_fingerprint
        remote_backend.remote_fingerprint = "crc32:deadbeef:rows=0"
        try:
            with pytest.raises(ValueError, match="remote engine"):
                FossSession.load(path, backend=remote_backend)
        finally:
            remote_backend.remote_fingerprint = original


# ----------------------------------------------------------------------
# robustness: handshake, reconnect, corrupt clients, limits
# ----------------------------------------------------------------------
class TestRemoteRobustness:
    def test_handshake_refuses_fingerprint_mismatch(self, server_db, job_workload):
        with EngineServer(server_db) as server:
            server.start()
            server._fingerprint = "crc32:deadbeef:rows=0"  # simulated drift
            with pytest.raises(RemoteEngineError, match="fingerprint mismatch"):
                RemoteBackend(
                    server.url,
                    database=job_workload.database,
                    timeout_s=CLIENT_TIMEOUT_S,
                )

    def test_bounded_reconnect_across_server_restart(self, server_db, job_workload):
        first = EngineServer(server_db)
        first.start()
        port = first.port
        client = RemoteBackend(
            first.url,
            database=job_workload.database,
            pool_size=1,
            timeout_s=CLIENT_TIMEOUT_S,
            max_reconnects=3,
            reconnect_backoff_s=0.01,
        )
        try:
            assert client.ping()
            first.close()
            # Same address, fresh server process-equivalent: the client's
            # pooled connection is dead and must transparently reconnect.
            second = EngineServer(server_db, port=port)
            second.start()
            try:
                assert client.ping(), "client must reconnect to a restarted server"
            finally:
                second.close()
            # No server at all: connection refused is non-transient, so the
            # client fails fast instead of burning the reconnect budget.
            with pytest.raises(RemoteEngineError, match="connection refused"):
                client.ping()
        finally:
            client.close()
            first.close()

    def test_reconnect_reverifies_fingerprint(self, server_db, job_workload):
        # The drift check must hold through transparent reconnects, not
        # just at construction: a restart is exactly when datagen can change.
        first = EngineServer(server_db)
        first.start()
        port = first.port
        client = RemoteBackend(
            first.url,
            database=job_workload.database,
            pool_size=1,
            timeout_s=CLIENT_TIMEOUT_S,
            max_reconnects=3,
            reconnect_backoff_s=0.01,
        )
        try:
            assert client.ping()
            first.close()
            second = EngineServer(server_db, port=port)
            second._fingerprint = "crc32:deadbeef:rows=0"  # simulated drift
            second.start()
            try:
                with pytest.raises(RemoteEngineError, match="drift"):
                    client.ping()
            finally:
                second.close()
        finally:
            client.close()
            first.close()

    def test_oversized_response_reported_not_dropped(self, server_db, job_workload):
        import pickle

        queries = [w.query for w in job_workload.train[:8]]
        for query in queries:
            query.signature()  # populate lazy caches so pickle sizes are stable
        request_size = len(
            pickle.dumps(
                ("plan_many", (queries, None)), protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        # Measure the exact response the capped server will produce.
        results = server_db.plan_many(queries)
        response_size = len(
            pickle.dumps(
                ("ok", (results, server_db.executions)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        if response_size <= request_size + 64:
            pytest.skip("plan trees not larger than queries at this scale")
        # The request (and the fingerprint handshake) fit; the response can't.
        cap = request_size + 32
        with EngineServer(server_db, max_frame_bytes=cap) as server:
            server.start()
            client = RemoteBackend(
                server.url, database=job_workload.database, timeout_s=CLIENT_TIMEOUT_S
            )
            try:
                with pytest.raises(RemoteEngineError, match="response frame too large"):
                    client.plan_many(queries)
                # An error frame, not a dropped socket: the connection (and
                # the already-computed work) survives for smaller batches.
                assert client.ping()
                assert plan_signature(
                    client.plan(queries[0]).plan
                ) == plan_signature(results[0].plan)
            finally:
                client.close()

    def test_client_disconnect_mid_frame_leaves_server_healthy(
        self, engine_server, remote_backend
    ):
        # A client that dies mid-header: the server must drop only that
        # connection, never wedge the shared backend.
        for garbage in (b"\x00\x01", b"GARBAGEGARBAGE!!"):
            raw = socket.create_connection(
                (engine_server.host, engine_server.port), timeout=10.0
            )
            raw.sendall(garbage)
            raw.close()
        assert remote_backend.ping(), "server must keep serving other clients"

    def test_oversized_request_rejected_client_side(self, engine_server, job_workload):
        client = RemoteBackend(
            engine_server.url,
            database=job_workload.database,
            timeout_s=CLIENT_TIMEOUT_S,
            max_frame_bytes=128,  # far below any real batch pickle
        )
        try:
            queries = [w.query for w in job_workload.train[:2]]
            with pytest.raises(FrameTooLargeError):
                client.plan_many(queries)
        finally:
            client.close()

    def test_calls_after_close_raise(self, engine_server, job_workload):
        client = RemoteBackend(
            engine_server.url, database=job_workload.database, timeout_s=CLIENT_TIMEOUT_S
        )
        client.close()
        client.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            client.ping()

    def test_make_backend_url_validation(self, job_workload):
        with pytest.raises(ValueError, match="tcp://"):
            make_backend(job_workload, engine_url="http://localhost:80")
        with pytest.raises(ValueError, match="engine_url"):
            FossConfig(engine_url="localhost:7733")


# ----------------------------------------------------------------------
# cross-wire span propagation (repro.obs)
# ----------------------------------------------------------------------
@pytest.fixture()
def obs_tracing():
    """Tracing on for the test; tracer and enabled-state restored after."""
    previous = obs.set_enabled(True)
    try:
        yield obs.get_tracer()
    finally:
        obs.get_tracer().clear()
        obs.set_enabled(previous)


class TestWireTracing:
    def test_untraced_wire_dicts_ignore_obs_state(self, job_workload):
        """Untraced context encoding is bitwise-independent of the obs gate."""
        ctx = RequestContext.mint(tenant="t", deadline_s=30.0)
        enabled_bytes = pickle.dumps(contexts_to_wire([ctx], now=ctx.submitted_at))
        previous = obs.set_enabled(False)
        try:
            disabled_bytes = pickle.dumps(contexts_to_wire([ctx], now=ctx.submitted_at))
        finally:
            obs.set_enabled(previous)
        assert enabled_bytes == disabled_bytes
        assert "trace" not in ctx.to_wire() and "span" not in ctx.to_wire()

    def test_untraced_dispatch_reply_is_two_slot(
        self, engine_server, job_workload, obs_tracing
    ):
        query = job_workload.train[30].query
        ctx = RequestContext.mint(tenant="t", deadline_s=60.0)
        payload = pickle.dumps(
            ("plan_many", ([query], None), contexts_to_wire([ctx])),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        status, body = engine_server._dispatch(payload)
        assert status == "ok"
        assert len(body) == 2, "untraced v2 requests keep the pre-obs reply shape"

    def test_traced_dispatch_reply_piggybacks_spans(
        self, engine_server, job_workload, obs_tracing
    ):
        query = job_workload.train[31].query
        ctx = RequestContext.mint(tenant="t", traced=True)
        assert ctx.trace_id is not None
        payload = pickle.dumps(
            ("plan_many", ([query], None), contexts_to_wire([ctx])),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        status, body = engine_server._dispatch(payload)
        assert status == "ok" and len(body) == 3
        spans = body[2]
        names = {s["name"] for s in spans}
        assert {"server.dispatch", "engine.batch"} <= names
        by_name = {s["name"]: s for s in spans}
        assert by_name["engine.batch"]["parent_id"] == by_name["server.dispatch"]["span_id"]
        assert all(s["trace_id"] == ctx.trace_id for s in spans)
        # drained: the server keeps nothing for this trace after replying
        assert obs_tracing.spans(ctx.trace_id) == []

    def test_traced_remote_call_joins_server_spans(
        self, remote_backend, job_workload, obs_tracing
    ):
        ctx = RequestContext.mint(tenant="t", traced=True)
        queries = [w.query for w in job_workload.train[32:34]]
        results = remote_backend.plan_many(queries, ctxs=[ctx, ctx])
        assert all(r is not None for r in results)
        spans = obs_tracing.spans(ctx.trace_id)
        names = {s.name for s in spans}
        assert {"remote.call", "server.dispatch", "engine.batch"} <= names
        call = next(s for s in spans if s.name == "remote.call")
        dispatch = next(s for s in spans if s.name == "server.dispatch")
        batch = next(s for s in spans if s.name == "engine.batch")
        assert dispatch.parent_id == call.span_id
        assert batch.parent_id == dispatch.span_id
        tree = obs_tracing.tree(ctx.trace_id)
        assert len(tree) == 1, "one joined tree, rooted at the client call"
        assert tree[0]["name"] == "remote.call"

    def test_v1_server_gets_plain_frames_and_no_spans(
        self, remote_backend, job_workload, obs_tracing, monkeypatch
    ):
        monkeypatch.setattr(remote_backend, "server_protocol", 1)
        ctx = RequestContext.mint(tenant="t", traced=True)
        results = remote_backend.plan_many(
            [job_workload.train[35].query], ctxs=[ctx]
        )
        assert results[0] is not None
        assert obs_tracing.spans(ctx.trace_id) == []

    def test_disabled_tracing_keeps_remote_plans_bitwise_identical(
        self, remote_backend, job_workload
    ):
        previous = obs.set_enabled(False)
        try:
            ctx = RequestContext.mint(tenant="t", traced=True)
            assert ctx.trace_id is None
            queries = [w.query for w in job_workload.train[36:38]]
            with_ctx = remote_backend.plan_many(queries, ctxs=[ctx, ctx])
            plain = job_workload.database.plan_many(queries)
            assert [plan_signature(p.plan) for p in with_ctx] == [
                plan_signature(p.plan) for p in plain
            ]
            assert len(obs.get_tracer()) == 0 or not obs.get_tracer().spans(None)
        finally:
            obs.set_enabled(previous)


# ----------------------------------------------------------------------
# end-to-end: traced optimize against a real repro-engine subprocess
# ----------------------------------------------------------------------
class TestTracedServingSubprocess:
    def test_traced_submit_yields_one_joined_trace(self, job_workload, obs_tracing):
        """The PR's acceptance path: submit(traced=True) against a real
        ``repro-engine`` subprocess produces one joined span tree crossing
        the wire, exportable as JSON and Prometheus text."""
        boot = (
            "from repro.engine.remote.server import main; "
            "raise SystemExit(main(['job', '--scale', '0.03', '--seed', '1', "
            "'--port', '0', '--metrics']))"
        )
        env = dict(os.environ)
        env.pop("REPRO_OBS", None)  # default-on tracing server-side
        proc = subprocess.Popen(
            [sys.executable, "-c", boot],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        url = None
        session = None
        try:
            assert proc.stdout is not None
            for line in proc.stdout:  # the watchdog bounds a wedged startup
                if "listening on " in line:
                    url = line.split("listening on ", 1)[1].split()[0]
                    break
            assert url is not None, "server never printed its listening line"
            session = FossSession.open(
                workload=job_workload, config=tiny_config(engine_url=url)
            )
            service = session.service()
            ticket = service.submit(job_workload.train[40].sql, traced=True)
            trace_id = ticket.context.trace_id
            assert trace_id is not None
            result = service.wait(ticket, timeout=WATCHDOG_S / 2)
            assert result.status == "done"

            tracer = obs.get_tracer()
            spans = tracer.spans(trace_id)
            names = {s.name for s in spans}
            assert len(spans) >= 4, names
            assert "service.request" in names
            assert "remote.call" in names
            assert "server.dispatch" in names, "server-side spans must cross the wire"
            tree = tracer.tree(trace_id)
            assert len(tree) == 1, "all spans join into a single tree"
            assert tree[0]["name"] == "service.request"

            # Both exporters can render the joined trace / live registry.
            facade = session.observability()
            snap = json.loads(facade.json())
            assert any(s["trace_id"] == trace_id for s in snap.get("spans", []))
            prom = facade.prometheus()
            assert "serving_latency_ms" in prom

            # The subprocess serves Prometheus text on its own listener.
            host, port = url[len("tcp://"):].rsplit(":", 1)
            scrape = socket.create_connection((host, int(port)), timeout=CLIENT_TIMEOUT_S)
            try:
                scrape.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
                raw = b""
                while True:
                    chunk = scrape.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            finally:
                scrape.close()
            assert raw.startswith(b"HTTP/1.0 200")
            assert b"engine_requests_total" in raw
        finally:
            if session is not None:
                session.close()
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)
