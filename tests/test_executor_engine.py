"""Executor and engine-facade tests: correctness, virtual time, timeouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.executor.joins import JoinOverflow, count_join_output, join_pairs
from repro.optimizer.plans import JOIN_METHODS, plan_aliases, plan_join_methods


@pytest.fixture(scope="module")
def db(request):
    return request.getfixturevalue("job_workload").database


class TestJoinPairs:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 10, size=50)
        right = rng.integers(0, 10, size=40)
        li, ri = join_pairs(left, right)
        expected = {(i, j) for i in range(50) for j in range(40) if left[i] == right[j]}
        assert set(zip(li.tolist(), ri.tolist())) == expected

    def test_empty_inputs(self):
        li, ri = join_pairs(np.array([]), np.array([1, 2]))
        assert len(li) == 0 and len(ri) == 0

    def test_no_matches(self):
        li, ri = join_pairs(np.array([1, 2]), np.array([3, 4]))
        assert len(li) == 0

    def test_overflow_raises_before_materializing(self):
        left = np.zeros(10_000, dtype=np.int64)
        right = np.zeros(10_000, dtype=np.int64)
        with pytest.raises(JoinOverflow):
            join_pairs(left, right, max_output=1000)

    def test_count_matches_pairs(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 5, size=30)
        right = rng.integers(0, 5, size=30)
        li, _ = join_pairs(left, right)
        assert count_join_output(left, right) == len(li)


@settings(max_examples=30, deadline=None)
@given(
    left=st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=40),
    right=st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=40),
)
def test_join_pairs_property(left, right):
    left_arr, right_arr = np.array(left, dtype=np.int64), np.array(right, dtype=np.int64)
    li, ri = join_pairs(left_arr, right_arr)
    assert len(li) == len(ri)
    if len(li):
        np.testing.assert_array_equal(left_arr[li], right_arr[ri])
    # Exhaustive count check.
    expected = sum(1 for a in left for b in right if a == b)
    assert len(li) == expected


class TestExecutionCorrectness:
    def test_count_star_matches_numpy(self, db):
        query = db.sql("SELECT COUNT(*) FROM title t WHERE t.production_year >= 2000")
        plan = db.plan(query).plan
        result = db.execute(query, plan)
        years = db.storage.table("title").column("production_year")
        assert result.aggregate_values[0] == float((years >= 2000).sum())

    def test_join_count_matches_bruteforce(self, db):
        query = db.sql(
            "SELECT COUNT(*) FROM title t, movie_keyword mk "
            "WHERE mk.movie_id = t.id AND t.kind_id = 1"
        )
        plan = db.plan(query).plan
        result = db.execute(query, plan)
        titles = db.storage.table("title")
        mk = db.storage.table("movie_keyword")
        kind_ok = titles.column("kind_id") == 1
        expected = int(kind_ok[mk.column("movie_id")].sum())
        assert result.output_rows == expected

    def test_all_join_orders_same_count(self, db, job_workload):
        """Result cardinality must be plan-invariant (relational semantics)."""
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables == 4)
        rng = np.random.default_rng(3)
        counts = set()
        for _ in range(5):
            order = list(query.aliases)
            rng.shuffle(order)
            methods = [JOIN_METHODS[int(rng.integers(3))] for _ in range(len(order) - 1)]
            plan = db.plan_with_hints(query, order, methods).plan
            result = db.execute(query, plan, use_cache=False)
            if not result.timed_out:  # timed-out runs report no rows
                counts.add(result.output_rows)
        assert len(counts) == 1

    def test_join_method_does_not_change_result(self, db, job_workload):
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables == 4)
        original = db.plan(query).plan
        order = plan_aliases(original)
        counts = set()
        for method in JOIN_METHODS:
            plan = db.plan_with_hints(query, order, [method] * (len(order) - 1)).plan
            counts.add(db.execute(query, plan, use_cache=False).output_rows)
        assert len(counts) == 1

    def test_aggregates_sum_min_max(self, db):
        query = db.sql("SELECT COUNT(*), SUM(t.kind_id), MAX(t.kind_id) FROM title t WHERE t.kind_id >= 1")
        result = db.execute(query, db.plan(query).plan)
        kinds = db.storage.table("title").column("kind_id")
        selected = kinds[kinds >= 1]
        assert result.aggregate_values[0] == float(len(selected))
        assert result.aggregate_values[1] == float(selected.sum())
        assert result.aggregate_values[2] == float(selected.max())

    def test_in_and_between_filters(self, db):
        query = db.sql("SELECT COUNT(*) FROM title t WHERE t.kind_id IN (0, 2) AND t.production_year BETWEEN 1950 AND 2000")
        result = db.execute(query, db.plan(query).plan)
        titles = db.storage.table("title")
        kinds = titles.column("kind_id")
        years = titles.column("production_year")
        expected = int((np.isin(kinds, [0, 2]) & (years >= 1950) & (years <= 2000)).sum())
        assert result.aggregate_values[0] == float(expected)

    def test_index_scan_equals_seq_scan(self, db):
        from repro.optimizer.plans import ScanNode

        query = db.sql("SELECT COUNT(*) FROM title t WHERE t.id = 5")
        plan = db.plan(query).plan
        assert isinstance(plan, ScanNode)
        result = db.execute(query, plan)
        seq_plan = ScanNode(alias="t", table="title", scan_type="seq", filters=plan.filters)
        seq_result = db.execute(query, seq_plan, use_cache=False)
        assert result.output_rows == seq_result.output_rows == 1


class TestVirtualTime:
    def test_deterministic_latency(self, db, job_workload):
        query = job_workload.all_queries[0].query
        plan = db.plan(query).plan
        a = db.execute(query, plan, use_cache=False).latency_ms
        b = db.execute(query, plan, use_cache=False).latency_ms
        assert a == b

    def test_latency_positive(self, db, job_workload):
        query = job_workload.all_queries[0].query
        result = db.execute(query, db.plan(query).plan)
        assert result.latency_ms > 0

    def test_timeout_truncates(self, db, job_workload):
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 5)
        plan = db.plan(query).plan
        full = db.execute(query, plan).latency_ms
        tiny_timeout = full / 10.0
        result = db.execute(query, plan, timeout_ms=tiny_timeout)
        assert result.timed_out
        assert result.latency_ms == pytest.approx(tiny_timeout)

    def test_timeout_noop_when_fast_enough(self, db, job_workload):
        query = job_workload.all_queries[0].query
        plan = db.plan(query).plan
        full = db.execute(query, plan).latency_ms
        result = db.execute(query, plan, timeout_ms=full * 10)
        assert not result.timed_out
        assert result.latency_ms == pytest.approx(full)

    def test_cache_hit_does_not_reexecute(self, db, job_workload):
        query = job_workload.all_queries[1].query
        plan = db.plan(query).plan
        db.execute(query, plan)
        before = db.executions
        db.execute(query, plan)
        assert db.executions == before

    def test_cache_upgrade_on_higher_cap(self, db, job_workload):
        """A plan capped at a low timeout re-executes under a higher one."""
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 5)
        plan = db.plan(query).plan
        full = db.execute(query, plan, use_cache=False).latency_ms
        db.clear_caches()
        low = db.execute(query, plan, timeout_ms=full / 10)
        assert low.timed_out
        high = db.execute(query, plan, timeout_ms=full * 10)
        assert not high.timed_out
        assert high.latency_ms == pytest.approx(full)


class TestEngineFacade:
    def test_plan_cache(self, db, job_workload):
        query = job_workload.all_queries[2].query
        first = db.plan(query)
        second = db.plan(query)
        assert first is second

    def test_original_latency_consistent(self, db, job_workload):
        query = job_workload.all_queries[0].query
        a = db.original_latency(query)
        b = db.execute(query, db.plan(query).plan).latency_ms
        assert a == b

    def test_explain_contains_tables(self, db, job_workload):
        wq = job_workload.all_queries[0]
        text = db.explain(db.plan(wq.query).plan)
        for table in wq.query.tables.values():
            assert table in text
