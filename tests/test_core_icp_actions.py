"""ICP, action-space, and minsteps tests (paper §III mechanics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actions import ActionSpace, OverrideAction, SwapAction
from repro.core.icp import IncompletePlan, minsteps


def make_icp(n: int, methods=None) -> IncompletePlan:
    order = tuple(f"t{i}" for i in range(n))
    if methods is None:
        methods = tuple("hash" for _ in range(n - 1))
    return IncompletePlan(order=order, methods=tuple(methods))


class TestIncompletePlan:
    def test_extract_roundtrip(self, job_workload):
        db = job_workload.database
        query = next(wq.query for wq in job_workload.all_queries if wq.query.num_tables >= 4)
        plan = db.plan(query).plan
        icp = IncompletePlan.extract(plan)
        rebuilt = db.plan_with_hints(query, icp.order, icp.methods).plan
        assert IncompletePlan.extract(rebuilt) == icp

    def test_swap(self):
        icp = make_icp(4)
        swapped = icp.swap(1, 3)
        assert swapped.order == ("t2", "t1", "t0", "t3")
        assert swapped.methods == icp.methods

    def test_swap_same_position_raises(self):
        with pytest.raises(ValueError):
            make_icp(3).swap(1, 1)

    def test_swap_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_icp(3).swap(1, 4)

    def test_override(self):
        icp = make_icp(4)
        overridden = icp.override(2, "nestloop")
        assert overridden.methods == ("hash", "nestloop", "hash")
        assert overridden.order == icp.order

    def test_override_out_of_range_raises(self):
        with pytest.raises(ValueError):
            make_icp(3).override(3, "hash")

    def test_method_count_validation(self):
        with pytest.raises(ValueError):
            IncompletePlan(order=("a", "b"), methods=())

    def test_duplicate_alias_raises(self):
        with pytest.raises(ValueError):
            IncompletePlan(order=("a", "a"), methods=("hash",))

    def test_parent_join_labels(self):
        """T1 and T2 sit under O1; T(p) for p >= 3 is under O(p-1)."""
        icp = make_icp(5)
        assert icp.parent_join_of_leaf(1) == 1
        assert icp.parent_join_of_leaf(2) == 1
        assert icp.parent_join_of_leaf(3) == 2
        assert icp.parent_join_of_leaf(5) == 4

    def test_signature_distinguishes(self):
        assert make_icp(3).signature() != make_icp(3).swap(1, 2).signature()
        assert make_icp(3).signature() != make_icp(3).override(1, "merge").signature()


class TestMinsteps:
    def test_identity_zero(self):
        icp = make_icp(5)
        assert minsteps(icp, icp) == 0

    def test_single_swap(self):
        icp = make_icp(5)
        assert minsteps(icp, icp.swap(1, 4)) == 1

    def test_single_override(self):
        icp = make_icp(5)
        assert minsteps(icp, icp.override(3, "merge")) == 1

    def test_swap_then_override(self):
        icp = make_icp(5)
        target = icp.swap(1, 2).override(1, "nestloop")
        assert minsteps(icp, target) == 2

    def test_three_cycle_needs_two_swaps(self):
        icp = make_icp(3)
        rotated = IncompletePlan(order=("t1", "t2", "t0"), methods=icp.methods)
        assert minsteps(icp, rotated) == 2

    def test_redundant_overrides_not_counted(self):
        """Overriding the same node twice ends one step from the origin."""
        icp = make_icp(4)
        wandering = icp.override(1, "merge").override(1, "nestloop")
        assert minsteps(icp, wandering) == 1

    def test_different_table_sets_raise(self):
        a = make_icp(3)
        b = IncompletePlan(order=("x", "y", "z"), methods=("hash", "hash"))
        with pytest.raises(ValueError):
            minsteps(a, b)


class TestActionSpace:
    def test_sizes_match_paper_formulas(self):
        n = 17
        space = ActionSpace(max_tables=n)
        assert space.num_swaps == n * (n - 1) // 2
        assert space.num_overrides == 3 * (n - 1)
        assert space.size == space.num_swaps + space.num_overrides

    def test_decode_encode_bijection(self):
        space = ActionSpace(max_tables=8)
        for action_id in range(space.size):
            action = space.decode(action_id)
            if isinstance(action, SwapAction):
                assert space.encode_swap(action.left_pos, action.right_pos) == action_id
            else:
                assert space.encode_override(action.join_pos, action.method) == action_id

    def test_decode_out_of_range(self):
        space = ActionSpace(max_tables=4)
        with pytest.raises(IndexError):
            space.decode(space.size)

    def test_apply_swap(self):
        space = ActionSpace(max_tables=5)
        icp = make_icp(5)
        action_id = space.encode_swap(2, 5)
        out = space.apply(action_id, icp)
        assert out.order[1] == "t4" and out.order[4] == "t1"

    def test_legality_mask_respects_query_size(self):
        space = ActionSpace(max_tables=10)
        icp = make_icp(4)
        mask = space.legality_mask(icp)
        # A swap touching position 5 must be illegal for a 4-table ICP.
        assert not mask[space.encode_swap(1, 5)]
        assert mask[space.encode_swap(1, 4)]
        # Override of O4 illegal (only O1..O3 exist).
        assert not mask[space.encode_override(4, "merge")]

    def test_legality_mask_forbids_noop_override(self):
        space = ActionSpace(max_tables=4)
        icp = make_icp(4, methods=("hash", "merge", "nestloop"))
        mask = space.legality_mask(icp)
        assert not mask[space.encode_override(1, "hash")]
        assert mask[space.encode_override(1, "merge")]

    def test_post_swap_mask_restricts_to_parents(self):
        space = ActionSpace(max_tables=6)
        icp = make_icp(6)
        swap = SwapAction(left_pos=1, right_pos=5)
        mask = space.post_swap_mask(icp, swap)
        legal = [space.decode(i) for i in np.flatnonzero(mask)]
        assert legal, "post-swap mask must allow something"
        assert all(isinstance(a, OverrideAction) for a in legal)
        # Parents of T1 and T5 are O1 and O4.
        assert {a.join_pos for a in legal} <= {1, 4}

    def test_post_swap_mask_fallback_when_empty(self):
        """If every parent override is a no-op... cannot happen with 3
        methods, but the fallback to full legality must keep the agent
        unstuck; simulate via a 2-table plan where parents coincide."""
        space = ActionSpace(max_tables=2)
        icp = make_icp(2)
        swap = SwapAction(left_pos=1, right_pos=2)
        mask = space.post_swap_mask(icp, swap)
        assert mask.any()

    def test_every_legal_action_is_applicable(self):
        space = ActionSpace(max_tables=7)
        icp = make_icp(5, methods=("hash", "merge", "nestloop", "hash"))
        mask = space.legality_mask(icp)
        for action_id in np.flatnonzero(mask):
            out = space.apply(int(action_id), icp)
            assert out.num_tables == icp.num_tables


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
    steps=st.integers(min_value=0, max_value=6),
)
def test_minsteps_lower_bounds_random_walks(n, seed, steps):
    """minsteps(origin, x) <= number of actions actually taken to reach x."""
    rng = np.random.default_rng(seed)
    space = ActionSpace(max_tables=n)
    origin = make_icp(n)
    current = origin
    for _ in range(steps):
        mask = space.legality_mask(current)
        legal = np.flatnonzero(mask)
        current = space.apply(int(rng.choice(legal)), current)
    assert minsteps(origin, current) <= steps


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=2, max_value=9), seed=st.integers(min_value=0, max_value=9999))
def test_swap_is_involution(n, seed):
    rng = np.random.default_rng(seed)
    icp = make_icp(n)
    l = int(rng.integers(1, n + 1))
    r = int(rng.integers(1, n + 1))
    if l == r:
        r = (r % n) + 1
    assert icp.swap(l, r).swap(l, r) == icp
