"""Observability demo: traced serving, span trees and both exporters.

Opens a session, serves a handful of requests with ``traced=True`` so
each one carries a ``repro.obs`` trace id across the serving layers,
then uses the :meth:`FossSession.observability` facade to show what the
subsystem collected:

* the span tree of one request (``service.request`` root with the flush
  window and engine batch nested under it);
* the serving metrics as a Prometheus text scrape (the same bytes the
  opt-in ``repro-engine --metrics`` endpoint serves);
* the JSON snapshot (metrics + spans + registered sources), optionally
  dumped to a file with ``--dump``.

Tracing is gated by ``REPRO_OBS`` (``REPRO_OBS=0`` disables it); with it
off the same requests take the exact pre-observability code path — same
plans, zero spans.

Run:  python examples/observability_demo.py [--scale 0.03] [--requests 8]
      [--dump obs_snapshot.json]
"""

from __future__ import annotations

import argparse
import json

from repro import obs
from repro.api import FossConfig, FossSession
from repro.core.aam import AAMConfig


def demo_config() -> FossConfig:
    return FossConfig(
        max_steps=3,
        seed=7,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )


def print_tree(nodes, depth=0):
    for node in nodes:
        start, end = node["start_s"], node["end_s"]
        took = f"{(end - start) * 1000:.2f} ms" if end is not None else "open"
        attrs = node.get("attrs") or {}
        extra = f"  {attrs}" if attrs else ""
        print(f"  {'  ' * depth}{node['name']}  [{took}, {node['status']}]{extra}")
        print_tree(node["children"], depth + 1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--dump", default=None,
                        help="write the JSON snapshot to this path")
    args = parser.parse_args()

    if not obs.enabled():
        print("REPRO_OBS=0: tracing is disabled; metrics still collect, "
              "but no spans will appear below.")

    print(f"Opening a FOSS session (scale={args.scale})...")
    with FossSession.open("job", scale=args.scale, seed=1, config=demo_config()) as session:
        facade = session.observability()
        sqls = [wq.sql for wq in session.workload.train[:4]]
        trace_ids = []

        print(f"Serving {args.requests} traced requests through a started service...")
        service = session.service(max_batch_size=4)
        with service.start(flush_interval_ms=2.0):
            for i in range(args.requests):
                ticket = service.submit(sqls[i % len(sqls)], traced=True)
                result = service.wait(ticket, timeout=120.0)
                assert result.ok, f"request {i} failed: {result.status}"
                if ticket.context is not None and ticket.context.trace_id:
                    trace_ids.append(ticket.context.trace_id)

        # --------------------------------------------------------------
        # One request's span tree, joined by parent links.
        # --------------------------------------------------------------
        if trace_ids:
            trace_id = trace_ids[-1]
            print(f"\nSpan tree of the last request (trace {trace_id}):")
            print_tree(facade.trace_tree(trace_id))
        else:
            print("\nNo traces recorded (tracing disabled).")

        # --------------------------------------------------------------
        # Prometheus scrape: the serving metrics the registry collected.
        # --------------------------------------------------------------
        scrape = facade.prometheus()
        serving_lines = [
            line for line in scrape.splitlines()
            if line.startswith(("serving_cache", "serving_batches"))
        ]
        print(f"\nPrometheus scrape: {len(scrape.splitlines())} lines; "
              "the serving counters:")
        for line in serving_lines[:8]:
            print(f"  {line}")

        # --------------------------------------------------------------
        # JSON snapshot: metrics + spans + registered sources.
        # --------------------------------------------------------------
        snap = facade.snapshot()
        stats = service.stats()
        print(f"\nJSON snapshot: {len(snap['metrics'])} metrics, "
              f"{len(snap['spans'])} spans, sources={sorted(snap['sources'])}")
        print(f"service.stats() view over the same registry: "
              f"{stats['requests']:.0f} requests, cache hit rate "
              f"{stats['cache_hit_rate']:.0%}, p50 {stats['latency_p50_ms']:.2f} ms, "
              f"obs_hook_errors {stats['obs_hook_errors']:.0f}")

        if args.dump:
            path = facade.dump(args.dump)
            size = len(json.dumps(facade.snapshot()))
            print(f"Snapshot dumped to {path} (~{size} bytes)")

    print("\nDone: one trace per request, every span joined under its "
          "service.request root, exportable as Prometheus text or JSON.")


if __name__ == "__main__":
    main()
