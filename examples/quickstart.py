"""Quickstart: plan a query with the expert engine, then let FOSS doctor it.

Builds a miniature JOB-like database, shows the expert optimizer's plan for
one query, trains FOSS briefly, and compares latencies.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.trainer import FossConfig, FossTrainer
from repro.workloads.job import build_job_workload


def main() -> None:
    print("Building a miniature IMDb-like database (21 relations)...")
    workload = build_job_workload(scale=0.05, seed=1)
    db = workload.database
    print(f"  {len(db.storage.table_names)} tables, {db.storage.total_rows():,} rows total")
    print(f"  {len(workload.train)} training / {len(workload.test)} test queries\n")

    wq = workload.train[0]
    print(f"Query {wq.query_id}:\n  {wq.sql}\n")

    planning = db.plan(wq.query)
    print("Expert optimizer's plan (the 'original plan' FOSS starts from):")
    print(db.explain(planning.plan))
    original = db.execute(wq.query, planning.plan)
    print(f"\nOriginal plan latency: {original.latency_ms:.2f} ms "
          f"({original.output_rows} join output rows)\n")

    print("Training FOSS briefly (bootstrap + 3 iterations)...")
    config = FossConfig(
        max_steps=3,
        episodes_per_update=80,
        bootstrap_episodes=30,
        aam_retrain_threshold=60,
        seed=7,
    )
    trainer = FossTrainer(workload, config)
    trainer.train(iterations=3, verbose=True)

    optimizer = trainer.make_optimizer()
    print("\nFOSS optimizing the same query...")
    chosen = optimizer.optimize(wq.query)
    print(f"  optimization time: {chosen.optimization_ms:.1f} ms, "
          f"candidates considered: {chosen.candidates_considered}, "
          f"chosen at step {chosen.chosen_step}")
    doctored = db.execute(wq.query, chosen.plan)
    print(f"  FOSS plan latency: {doctored.latency_ms:.2f} ms "
          f"(original: {original.latency_ms:.2f} ms)")
    if doctored.latency_ms < original.latency_ms * 0.95:
        print("  -> FOSS repaired the plan!")
    else:
        print("  -> FOSS kept (or matched) the original plan — the expert "
              "was already fine on this query.")


if __name__ == "__main__":
    main()
