"""Quickstart: open a FOSS session, train the doctor, serve SQL text.

Builds a miniature JOB-like database through the ``repro.api`` facade,
shows the expert optimizer's plan for one query, trains FOSS briefly, and
serves the same query as raw SQL text through the ``OptimizerService``.

Run:  python examples/quickstart.py [--scale 0.05] [--iterations 3]
"""

from __future__ import annotations

import argparse

from repro.api import FossConfig, FossSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--episodes", type=int, default=80)
    args = parser.parse_args()

    print("Opening a FOSS session over a miniature IMDb-like database...")
    config = FossConfig(
        max_steps=3,
        episodes_per_update=args.episodes,
        bootstrap_episodes=max(10, args.episodes // 3),
        aam_retrain_threshold=60,
        seed=7,
    )
    with FossSession.open("job", scale=args.scale, seed=1, config=config) as session:
        db = session.backend
        print(f"  {len(db.storage.table_names)} tables, {db.storage.total_rows():,} rows total")
        print(f"  {len(session.workload.train)} training / {len(session.workload.test)} test queries\n")

        wq = session.workload.train[0]
        print(f"Query {wq.query_id}:\n  {wq.sql}\n")

        planning = db.plan(wq.query)
        print("Expert optimizer's plan (the 'original plan' FOSS starts from):")
        print(db.explain(planning.plan))
        original = db.execute(wq.query, planning.plan)
        print(f"\nOriginal plan latency: {original.latency_ms:.2f} ms "
              f"({original.output_rows} join output rows)\n")

        print(f"Training FOSS briefly (bootstrap + {args.iterations} iterations)...")
        session.train(iterations=args.iterations, verbose=True)

        service = session.service()
        print("\nFOSS serving the same query as raw SQL text...")
        chosen = service.optimize_sql(wq.sql)
        print(f"  optimization time: {chosen.optimization_ms:.1f} ms, "
              f"candidates considered: {chosen.candidates_considered}, "
              f"chosen at step {chosen.chosen_step}")
        doctored = service.execute_sql(wq.sql)
        print(f"  FOSS plan latency: {doctored.latency_ms:.2f} ms "
              f"(original: {original.latency_ms:.2f} ms)")
        if doctored.latency_ms < original.latency_ms * 0.95:
            print("  -> FOSS repaired the plan!")
        else:
            print("  -> FOSS kept (or matched) the original plan — the expert "
                  "was already fine on this query.")
        stats = service.stats()
        print(f"\nService stats: {stats['requests']} requests, "
              f"cache hit rate {stats['cache_hit_rate']:.0%}, "
              f"p50 latency {stats['latency_p50_ms']:.1f} ms")


if __name__ == "__main__":
    main()
