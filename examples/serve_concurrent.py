"""Concurrent serving demo: threaded clients + multi-tenant sessions.

Part one stands up one ``OptimizerService`` with its background flusher
running and drives it from several client threads — submissions from all
threads are micro-batched into shared flushes (size- and time-triggered),
and every client blocks on ``wait(ticket)`` for its own outcome.

Part two opens a ``ServiceGroup``: two named tenants, each with its own
session/optimizer/memo/stats, all routing through ONE shared engine
backend (a sharded worker pool with ``--workers > 1``), and serves both
tenants from concurrent threads.

Plans served under concurrency are bitwise-identical to sequential
serving — the demo checks this — only ordering and telemetry differ.
Thread counts here buy overlap and batching, not CPU parallelism: on a
single-core box the req/s figures measure plumbing, not speedup.

Run:  python examples/serve_concurrent.py [--scale 0.03] [--threads 4]
      [--requests 32] [--workers 2]
"""

from __future__ import annotations

import argparse
import threading
import time

import numpy as np

from repro.api import FossConfig, FossSession, ServiceGroup
from repro.core.aam import AAMConfig
from repro.optimizer.plans import plan_signature


def demo_config() -> FossConfig:
    return FossConfig(
        max_steps=3,
        seed=7,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )


def serving_trace(workload, requests: int):
    sqls = [wq.sql for wq in workload.train[:8]]
    rng = np.random.default_rng(11)
    return [sqls[i] for i in rng.permutation(np.arange(requests) % len(sqls))]


def drive_clients(submit, wait, sqls, num_threads: int):
    """Each client thread submits its share and waits for its outcomes."""
    results = [None] * len(sqls)
    errors = []

    def client(thread_index: int) -> None:
        try:
            for i in range(thread_index, len(sqls), num_threads):
                ticket = submit(sqls[i])
                results[i] = wait(ticket)
        except Exception as exc:
            errors.append(f"client {thread_index}: {exc!r}")

    threads = [
        threading.Thread(target=client, args=(t,), daemon=True)
        for t in range(num_threads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"client threads failed: {errors}"
    return results, len(sqls) / elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--workers", type=int, default=1,
                        help="engine workers for the shared tenant pool")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # Part 1: one service, many client threads
    # ------------------------------------------------------------------
    print(f"Opening a FOSS session (scale={args.scale})...")
    with FossSession.open("job", scale=args.scale, seed=1, config=demo_config()) as session:
        sqls = serving_trace(session.workload, args.requests)
        print(f"Sequential reference pass over {len(set(sqls))} unique queries...")
        reference = {
            sql: plan_signature(session.service().optimize_sql(sql).plan)
            for sql in set(sqls)
        }

        print(f"Serving {len(sqls)} requests from {args.threads} client threads "
              "through one started service...")
        # max_pending bounds the queue (a full one raises a typed
        # AdmissionRejectedError at submit); sized to the trace here so
        # the demo exercises the check without ever rejecting.
        service = session.service(max_batch_size=8, max_pending=max(len(sqls), 8))
        with service.start(flush_interval_ms=2.0):
            results, rps = drive_clients(
                service.submit,
                lambda ticket: service.wait(ticket, timeout=120.0),
                sqls,
                args.threads,
            )
        assert all(r.ok for r in results), "concurrent serving produced failed tickets"
        matched = sum(
            plan_signature(r.plan.plan) == reference[sql]
            for sql, r in zip(sqls, results)
        )
        assert matched == len(sqls), (
            f"only {matched}/{len(sqls)} threaded plans matched the sequential path"
        )
        stats = service.stats()
        print(f"  {rps:.0f} req/s; {matched}/{len(sqls)} plans identical to the "
              "sequential path")
        print(f"  batches: {stats['batches']:.0f} "
              f"(mean occupancy {stats['mean_batch_occupancy']:.1f}), "
              f"cache hit rate {stats['cache_hit_rate']:.0%}")
        print(f"  lifecycle: {stats['expired']:.0f} expired, "
              f"{stats['rejected']:.0f} rejected, stage p95 "
              f"queue {stats['stage_queue_p95_ms']:.1f} ms / "
              f"engine {stats['stage_engine_p95_ms']:.1f} ms / "
              f"total {stats['stage_total_p95_ms']:.1f} ms\n")

    # ------------------------------------------------------------------
    # Part 2: two tenants over one shared engine pool
    # ------------------------------------------------------------------
    backend_kind = "sharded pool" if args.workers > 1 else "local engine"
    print(f"Opening a ServiceGroup: tenants alpha+beta over one shared "
          f"{backend_kind} (workers={args.workers})...")
    with ServiceGroup.open(
        "job",
        tenants=("alpha", "beta"),
        scale=args.scale,
        seed=1,
        config=demo_config(),
        engine_workers=args.workers,
        max_pending=max(args.requests, 8),  # per-tenant queue bound
    ) as group:
        group.start(flush_interval_ms=2.0)
        per_tenant = {}

        def tenant_client(tenant: str) -> None:
            trace = serving_trace(group.session(tenant).workload, args.requests // 2)
            tickets = [group.submit(tenant, sql) for sql in trace]
            outcomes = [group.wait(tenant, t, timeout=120.0) for t in tickets]
            per_tenant[tenant] = sum(r.ok for r in outcomes)

        threads = [
            threading.Thread(target=tenant_client, args=(tenant,), daemon=True)
            for tenant in group.tenants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = group.stats()
        for tenant in group.tenants:
            print(f"  {tenant}: {per_tenant[tenant]} requests served ok, "
                  f"cache hit rate {stats[tenant]['cache_hit_rate']:.0%}, "
                  f"p50 {stats[tenant]['latency_p50_ms']:.1f} ms")
        rollup = stats["group"]
        print(f"  group rollup: {rollup['requests']:.0f} requests "
              f"({rollup['expired']:.0f} expired, {rollup['rejected']:.0f} "
              f"rejected) across {rollup['tenants']:.0f} tenants, "
              f"stage total p95 {rollup['stage_total_p95_ms']:.1f} ms")
        print(f"  shared backend: {stats['backend']}")
        group.stop()
    print("\nDone: concurrent and multi-tenant serving returned the same plans "
          "the single-threaded path would.")


if __name__ == "__main__":
    main()
