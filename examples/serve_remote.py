"""Remote engine demo: a session and two tenants over a socket-served engine.

The deployment shape this demonstrates (the paper's "doctor steering a
live optimizer" as a client/server system):

1. a ``repro-engine`` server owns the dataset and the expert engine —
   here launched as a subprocess unless ``REPRO_ENGINE_URL`` (or
   ``--url``) points at one you started yourself, e.g.::

       repro-engine job --scale 0.05 --port 7733 --workers 2

2. a client ``FossSession`` opens with ``engine_url=tcp://host:port``:
   SQL binds locally against a fingerprint-checked mirror dataset, while
   planning and execution RPCs travel as length-prefixed crc32 frames;

3. a 2-tenant ``ServiceGroup`` shares that one ``RemoteBackend`` — the
   multi-tenant layer is agnostic to whether the pool behind it is pipes
   or sockets.

The demo checks the determinism contract as it goes: plans served over
the wire are bitwise-identical to an in-process session's.  On one box
the req/s you see is framing/RPC overhead, not scaling — the point of
the subsystem is that the server can live on a different machine.

Run:  python examples/serve_remote.py [--scale 0.03] [--requests 12]
      [--workers 1] [--url tcp://host:port]
"""

from __future__ import annotations

import argparse
import os
import select
import subprocess
import sys
import time

from repro.api import FossConfig, FossSession, ServiceGroup
from repro.core.aam import AAMConfig
from repro.engine.remote import RemoteBackend
from repro.optimizer.plans import plan_signature


def demo_config(url: str = "") -> FossConfig:
    return FossConfig(
        max_steps=3,
        seed=7,
        engine_url=url,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )


def launch_server(scale: float, workers: int, timeout_s: float = 300.0):
    """Start ``repro-engine`` as a subprocess; return (process, url)."""
    command = [
        sys.executable, "-m", "repro.engine.remote",
        "job", "--scale", str(scale), "--seed", "1",
        "--workers", str(workers), "--port", "0",
    ]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    deadline = time.monotonic() + timeout_s
    url = None
    # The server prints a machine-readable "listening on tcp://..." line
    # once the dataset is built; wait for it, but never block past the
    # deadline on a wedged-but-silent server (select before each read).
    while time.monotonic() < deadline:
        remaining = deadline - time.monotonic()
        ready, _, _ = select.select([process.stdout], [], [], max(remaining, 0.0))
        if not ready:
            break
        line = process.stdout.readline()
        if not line:
            break  # server exited
        print(f"  [server] {line.rstrip()}")
        if "listening on tcp://" in line:
            url = line.split("listening on ", 1)[1].split()[0]
            break
    if url is None:
        process.terminate()
        raise RuntimeError("repro-engine did not come up")
    return process, url


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--requests", type=int, default=12)
    parser.add_argument("--workers", type=int, default=1,
                        help="server-side engine workers (when spawning)")
    parser.add_argument("--url", default=os.environ.get("REPRO_ENGINE_URL", ""),
                        help="attach to a running repro-engine instead of spawning one")
    args = parser.parse_args()

    process = None
    if args.url:
        url = args.url
        print(f"attaching to repro-engine at {url}")
    else:
        print(f"spawning repro-engine (job, scale={args.scale}, workers={args.workers})...")
        process, url = launch_server(args.scale, args.workers)

    try:
        print(f"\nopening a session against {url} ...")
        with FossSession.open(
            "job", scale=args.scale, seed=1, config=demo_config(url)
        ) as session:
            assert isinstance(session.backend, RemoteBackend)
            print(f"  fingerprint handshake OK: {session.backend.remote_fingerprint}")

            sqls = [wq.sql for wq in session.workload.train[: args.requests]]
            service = session.service()
            start = time.perf_counter()
            remote_plans = [plan_signature(service.optimize_sql(s).plan) for s in sqls]
            elapsed = time.perf_counter() - start
            print(
                f"  optimized {len(sqls)} queries over the wire "
                f"({len(sqls) / elapsed:.1f} req/s loopback — RPC overhead, not scaling)"
            )

            print("\nchecking parity against an in-process session ...")
            with FossSession.open(
                workload=session.workload, config=demo_config()
            ) as local:
                local_plans = [
                    plan_signature(local.service().optimize_sql(s).plan) for s in sqls
                ]
            assert remote_plans == local_plans, "remote plans diverged from local!"
            print(f"  bitwise-identical plans for all {len(sqls)} queries")

            print("\ntwo tenants sharing ONE remote backend ...")
            with ServiceGroup.open(
                workload=session.workload,
                tenants=("alpha", "beta"),
                config=demo_config(),
                backend=session.backend,
            ) as group:
                for tenant in group.tenants:
                    plans = [
                        plan_signature(group.optimize_sql(tenant, s).plan)
                        for s in sqls[:4]
                    ]
                    assert plans == local_plans[:4]
                    print(f"  tenant {tenant!r}: {len(plans)} plans, parity OK")
                stats = group.stats()["backend"]
                print(
                    f"  shared backend: {stats['backend']} -> "
                    f"server={stats['server_backend']} "
                    f"(executions={stats['server_executions']})"
                )
        print("\ndone: the engine never lived in this process.")
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    main()
