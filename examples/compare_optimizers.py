"""Compare all six optimizers (the paper's Table I, one workload).

Every method is constructed **by name** through the ``repro.api`` registry
and trained/evaluated by the shared harness drivers; PostgreSQL is the 1.0
reference.

Run:  python examples/compare_optimizers.py [--workload job|tpcds|stack]
"""

from __future__ import annotations

import argparse

from repro.api import FossConfig, FossSession
from repro.experiments.harness import evaluate_method
from repro.experiments.reporting import render_table1

# (registry name, report label, training iterations multiplier)
METHODS = [
    ("postgresql", "PostgreSQL", 0),
    ("bao", "Bao", 1),
    ("hybridqo", "HybridQO", 1),
    ("balsa", "Balsa", 1),
    ("loger", "Loger", 1),
    ("foss", "FOSS", 2),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="job", choices=("job", "tpcds", "stack"))
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--episodes", type=int, default=120)
    args = parser.parse_args()

    print(f"Building the {args.workload} workload (scale {args.scale})...")
    config = FossConfig(
        max_steps=3,
        episodes_per_update=args.episodes,
        bootstrap_episodes=max(10, args.episodes // 3),
        aam_retrain_threshold=80,
        seed=7,
    )
    with FossSession.open(args.workload, scale=args.scale, seed=1, config=config) as session:
        results = []
        for name, label, iteration_factor in METHODS:
            iterations = args.iterations * iteration_factor
            print(f"Training + evaluating {label}"
                  f"{f' ({iterations} iterations)' if iterations else ''}...")
            result = evaluate_method(name, session, iterations=iterations, label=label)
            results.append(result)
            print(f"  {label:<11} train WRL {result.train.wrl:5.2f} GMRL {result.train.gmrl:5.2f} | "
                  f"test WRL {result.test.wrl:5.2f} GMRL {result.test.gmrl:5.2f} "
                  f"(trained {result.training_time_s:.0f}s)")

        print("\n" + render_table1(results, [args.workload]))
        print("\n(Metrics below 1.0 beat the expert. At these reduced training "
              "budgets the margins are smaller than the paper's, but the "
              "ordering should match: FOSS lowest, Bao limited, Balsa unstable.)")


if __name__ == "__main__":
    main()
