"""Compare all six optimizers (the paper's Table I, one workload).

Trains Bao, HybridQO, Balsa, Loger and FOSS briefly on the JOB-like
workload and reports WRL / GMRL / total runtime for each, with PostgreSQL
as the 1.0 reference.

Run:  python examples/compare_optimizers.py [--workload job|tpcds|stack]
"""

from __future__ import annotations

import argparse
import time

from repro.baselines.balsa import BalsaOptimizer
from repro.baselines.bao import BaoOptimizer
from repro.baselines.hybridqo import HybridQOOptimizer
from repro.baselines.loger import LogerOptimizer
from repro.baselines.postgres import PostgresOptimizer
from repro.core.trainer import FossConfig, FossTrainer
from repro.experiments.harness import MethodResult, evaluate_optimizer
from repro.experiments.reporting import render_table1
from repro.workloads.base import build_workload_by_name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="job", choices=("job", "tpcds", "stack"))
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--iterations", type=int, default=3)
    args = parser.parse_args()

    print(f"Building the {args.workload} workload (scale {args.scale})...")
    workload = build_workload_by_name(args.workload, scale=args.scale, seed=1)
    db = workload.database

    results = []

    def record(name, optimizer, training_time):
        train_eval = evaluate_optimizer(db, workload.train, optimizer)
        test_eval = evaluate_optimizer(db, workload.test, optimizer)
        results.append(MethodResult(name, args.workload, train_eval, test_eval, training_time))
        print(f"  {name:<11} train WRL {train_eval.wrl:5.2f} GMRL {train_eval.gmrl:5.2f} | "
              f"test WRL {test_eval.wrl:5.2f} GMRL {test_eval.gmrl:5.2f} "
              f"(trained {training_time:.0f}s)")

    print("\nEvaluating PostgreSQL (the expert reference)...")
    record("PostgreSQL", PostgresOptimizer(db), 0.0)

    print("Training Bao (hint sets + value model)...")
    bao = BaoOptimizer(db, seed=11)
    bao.train(workload.train, iterations=args.iterations)
    record("Bao", bao, bao.training_time_s)

    print("Training HybridQO (MCTS prefix hints)...")
    hybrid = HybridQOOptimizer(db, seed=13)
    hybrid.train(workload.train, iterations=args.iterations)
    record("HybridQO", hybrid, hybrid.training_time_s)

    print("Training Balsa (bottom-up constructor)...")
    balsa = BalsaOptimizer(db, seed=17)
    balsa.train(workload.train, iterations=args.iterations)
    record("Balsa", balsa, balsa.training_time_s)

    print("Training Loger (join order + method restrictions)...")
    loger = LogerOptimizer(db, seed=19)
    loger.train(workload.train, iterations=args.iterations)
    record("Loger", loger, loger.training_time_s)

    print("Training FOSS (the plan doctor)...")
    start = time.perf_counter()
    trainer = FossTrainer(
        workload,
        FossConfig(max_steps=3, episodes_per_update=120, bootstrap_episodes=40,
                   aam_retrain_threshold=80, seed=7),
    )
    trainer.train(iterations=2 * args.iterations, verbose=False)
    record("FOSS", trainer.make_optimizer(), time.perf_counter() - start)

    print("\n" + render_table1(results, [args.workload]))
    print("\n(Metrics below 1.0 beat the expert. At these reduced training "
          "budgets the margins are smaller than the paper's, but the "
          "ordering should match: FOSS lowest, Bao limited, Balsa unstable.)")


if __name__ == "__main__":
    main()
