"""Tour of the database substrate: SQL, EXPLAIN, estimation errors, hints.

Shows the pieces FOSS is built on — and the estimator failures that give a
plan doctor its job:

1. run ad-hoc SQL against the IMDb-like database;
2. EXPLAIN a plan with the optimizer's estimates;
3. demonstrate an independence-assumption estimation error on a planted
   correlated column pair;
4. steer the optimizer with an incomplete-plan hint (the pg_hint_plan
   equivalent) and watch the latency change.

Run:  python examples/explore_database.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro.api import FossSession
from repro.catalog.datagen import correlation_mapping
from repro.core.icp import IncompletePlan


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args()

    print("Opening a FOSS session over the IMDb-like dataset...")
    session = FossSession.open("job", scale=args.scale, seed=1)
    db = session.backend
    rows = db.storage.total_rows()
    print(f"  {len(db.storage.table_names)} tables, {rows:,} rows, "
          f"{db.storage.memory_bytes() / 1e6:.1f} MB\n")

    # 1. Ad-hoc SQL ----------------------------------------------------
    query = db.sql(
        "SELECT COUNT(*) FROM title AS t, movie_info AS mi "
        "WHERE mi.movie_id = t.id AND t.production_year BETWEEN 1950 AND 1990"
    )
    plan = db.plan(query).plan
    result = db.execute(query, plan)
    print(f"COUNT(*) over titles 1950-1990 joined with movie_info: "
          f"{result.aggregate_values[0]:.0f} rows in {result.latency_ms:.2f} ms\n")

    # 2. EXPLAIN -------------------------------------------------------
    print("EXPLAIN:")
    print(db.explain(plan))

    # 3. Estimation error on a planted correlation ---------------------
    mapping = correlation_mapping(11, 113, 500)  # movie_info.info ~ info_type_id
    info_type = 1
    consistent = db.sql(
        f"SELECT COUNT(*) FROM movie_info mi "
        f"WHERE mi.info_type_id = {info_type} AND mi.info = {int(mapping[info_type])}"
    )
    estimate = db.estimator.scan_rows(consistent, "mi")
    true_rows = db.execute(consistent, db.plan(consistent).plan).output_rows
    print("\nIndependence-assumption failure on movie_info(info_type_id, info):")
    print(f"  estimator believes {estimate:.1f} rows; truth is {true_rows} rows "
          f"({true_rows / max(estimate, 1e-9):.0f}x underestimate)")
    print("  -> join orders chosen from this estimate can be catastrophically wrong.\n")

    # 4. Hint steering (pg_hint_plan equivalent) ------------------------
    join_query = db.sql(
        "SELECT COUNT(*) FROM title AS t, movie_info AS mi, cast_info AS ci "
        "WHERE mi.movie_id = t.id AND ci.movie_id = t.id "
        "AND t.production_year BETWEEN 1900 AND 1950"
    )
    original = db.plan(join_query).plan
    icp = IncompletePlan.extract(original)
    original_latency = db.execute(join_query, original).latency_ms
    print(f"Expert plan: order={list(icp.order)} methods={list(icp.methods)} "
          f"-> {original_latency:.2f} ms")
    for method in ("hash", "merge", "nestloop"):
        hinted = db.plan_with_hints(join_query, icp.order, [method] * icp.num_joins).plan
        latency = db.execute(join_query, hinted).latency_ms
        marker = " (expert's pick)" if method == icp.methods[0] else ""
        print(f"  all-{method:<9} hint -> {latency:10.2f} ms{marker}")
    print("\nThese hints are exactly the mechanism FOSS's Swap/Override "
          "actions drive, one fine-grained edit at a time.")


if __name__ == "__main__":
    main()
