"""The paper's §I motivating example, reproduced on this engine.

The paper's query 1b story: PostgreSQL picks a hash join where a nested
loop was right, and a table order that amplifies the mistake.  FOSS acts as
a *plan doctor*: it first overrides the join method, then swaps the two
tables into a proper order — a 2-step repair.

This demo finds a query in the JOB-like workload where the expert's plan is
far from the best 2-step-repairable plan, enumerates the repairs explicitly
(what the trained planner learns to do directly), and prints the
step-by-step doctoring.

Run:  python examples/plan_doctor_demo.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import FossSession
from repro.core.actions import ActionSpace
from repro.core.icp import IncompletePlan


def best_single_step(db, query, icp, space, timeout_ms):
    """Cheapest plan reachable from ``icp`` in one action."""
    best = (None, None, float("inf"))
    for action_id in np.flatnonzero(space.legality_mask(icp)):
        candidate = space.apply(int(action_id), icp)
        plan = db.plan_with_hints(query, candidate.order, candidate.methods).plan
        latency = db.execute(query, plan, timeout_ms=timeout_ms).latency_ms
        if latency < best[2]:
            best = (candidate, space.decode(int(action_id)), latency)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args()

    print("Opening a FOSS session over the JOB-like workload...")
    session = FossSession.open("job", scale=args.scale, seed=1)
    workload = session.workload
    db = session.backend
    space = ActionSpace(max_tables=workload.max_query_tables)

    # Find the query with the largest 2-step repair.
    print("Scanning for the query with the biggest 2-step repair "
          "(this is what the trained FOSS planner learns to do in one shot)...\n")
    best_case = None
    for wq in workload.train:
        query = wq.query
        if query.num_tables < 4 or query.num_tables > 8:
            continue
        original = db.plan(query).plan
        original_latency = db.execute(query, original).latency_ms
        if original_latency < 1.0:
            continue
        icp0 = IncompletePlan.extract(original)
        timeout = original_latency * 1.5
        icp1, action1, latency1 = best_single_step(db, query, icp0, space, timeout)
        icp2, action2, latency2 = best_single_step(db, query, icp1, space, timeout)
        final = min(latency1, latency2)
        gain = original_latency / max(final, 1e-9)
        if best_case is None or gain > best_case[-1]:
            best_case = (wq, original, original_latency, (action1, latency1), (action2, latency2), gain)
        if gain > 5.0:
            break

    wq, original, original_latency, step1, step2, gain = best_case
    print(f"Patient: query {wq.query_id}")
    print(f"  {wq.sql}\n")
    print("Diagnosis — the expert optimizer's plan:")
    print(db.explain(original))
    print(f"\n  original latency: {original_latency:.2f} ms")
    print(f"\nTreatment step 1: {step1[0]}  ->  {step1[1]:.2f} ms")
    print(f"Treatment step 2: {step2[0]}  ->  {step2[1]:.2f} ms")
    print(f"\nTotal improvement: {gain:.2f}x "
          f"({original_latency:.2f} ms -> {min(step1[1], step2[1]):.2f} ms)")
    print("\nIn deployed FOSS, the trained planner proposes these edits "
          "directly and the asymmetric advantage model confirms the winner "
          "without executing anything.")


if __name__ == "__main__":
    main()
