"""Episode-throughput micro-bench: sequential vs lockstep-batched execution.

Measures episodes/sec of the FOSS hot path (policy forward + AAM advantage
queries + plan completion per step) with ``episode_batch_size=1`` against a
lockstep cohort, on identical query streams and freshly-initialized models.
Results go to ``BENCH_throughput.json`` at the repo root so future PRs can
track the trajectory.

Run with ``pytest benchmarks/test_episode_throughput.py`` (excluded from
tier-1 by ``testpaths``).
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.aam import AAMConfig
from repro.core.trainer import FossConfig, FossTrainer
from repro.workloads.job import build_job_workload

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

NUM_EPISODES = 128
BATCH_SIZE = 64


def bench_config(batch_size: int) -> FossConfig:
    return FossConfig(
        max_steps=3,
        episode_batch_size=batch_size,
        seed=23,
        aam=AAMConfig(epochs=1),
    )


def episodes_per_second(workload, queries, batch_size: int, repeats: int = 3) -> float:
    """Best-of-N episodes/sec over fresh trainers (model init not timed)."""
    rates = []
    for _ in range(repeats):
        trainer = FossTrainer(workload, bench_config(batch_size))
        runner = trainer.runners[0]
        start = time.perf_counter()
        episodes = runner.run(trainer.sim_env, queries)
        elapsed = time.perf_counter() - start
        assert len(episodes) == len(queries)
        rates.append(len(queries) / elapsed)
    return max(rates)


@pytest.mark.bench
def test_episode_throughput():
    workload = build_job_workload(scale=0.03, seed=1)
    eligible = [wq.query for wq in workload.train if wq.query.num_tables >= 3]
    queries = [eligible[i % len(eligible)] for i in range(NUM_EPISODES)]

    # Warm the database's shared plan/hint/latency caches so neither timed
    # mode pays one-off planning costs the other skipped.
    episodes_per_second(workload, queries, BATCH_SIZE, repeats=1)

    sequential_eps = episodes_per_second(workload, queries, batch_size=1)
    batched_eps = episodes_per_second(workload, queries, batch_size=BATCH_SIZE)
    speedup = batched_eps / sequential_eps

    RESULTS_PATH.write_text(
        json.dumps(
            {
                "num_episodes": NUM_EPISODES,
                "episode_batch_size": BATCH_SIZE,
                "sequential_eps": round(sequential_eps, 2),
                "batched_eps": round(batched_eps, 2),
                "speedup": round(speedup, 2),
            },
            indent=2,
        )
        + "\n"
    )

    print(
        f"\n=== episode throughput: sequential {sequential_eps:.1f} eps, "
        f"batched(B={BATCH_SIZE}) {batched_eps:.1f} eps, {speedup:.1f}x ==="
    )
    assert speedup >= 3.0, (
        f"lockstep batching must be >= 3x sequential, got {speedup:.2f}x "
        f"({sequential_eps:.1f} -> {batched_eps:.1f} eps)"
    )
