"""Episode-throughput micro-bench: sequential vs batched vs sharded.

Two regimes are measured, both writing ``BENCH_throughput.json`` at the
repo root so future PRs can track the trajectory:

* **model-bound** (warm engine caches, simulated environment): the PR-1
  lockstep-batching comparison — ``episode_batch_size=1`` vs a cohort —
  where policy/AAM forwards dominate;
* **engine-bound** (cold engine caches, real environment): the regime the
  sharded backend targets — hinted-plan completion and virtual execution
  dominate, and ``engine_workers > 1`` fans the cohort's engine batch
  calls out across CPU cores.

The sharded >= 1.5x acceptance bar only applies on machines with >= 4
cores; on smaller machines the numbers are still recorded.

Run with ``pytest benchmarks/test_episode_throughput.py`` (excluded from
tier-1 by ``testpaths``).
"""

import os
import time

import pytest
from bench_results import update_results

from repro.core.aam import AAMConfig
from repro.core.trainer import FossConfig, FossTrainer
from repro.workloads.job import build_job_workload

NUM_EPISODES = 128
BATCH_SIZE = 64

ENGINE_EPISODES = 48
ENGINE_WORKERS = max(2, min(4, os.cpu_count() or 1))


def bench_config(batch_size: int, engine_workers: int = 1) -> FossConfig:
    return FossConfig(
        max_steps=3,
        episode_batch_size=batch_size,
        engine_workers=engine_workers,
        seed=23,
        aam=AAMConfig(epochs=1),
    )


def episodes_per_second(workload, queries, batch_size: int, repeats: int = 3) -> float:
    """Best-of-N episodes/sec over fresh trainers (model init not timed)."""
    rates = []
    for _ in range(repeats):
        trainer = FossTrainer(workload, bench_config(batch_size))
        runner = trainer.runners[0]
        start = time.perf_counter()
        episodes = runner.run(trainer.sim_env, queries)
        elapsed = time.perf_counter() - start
        assert len(episodes) == len(queries)
        rates.append(len(queries) / elapsed)
    return max(rates)


def engine_bound_eps(engine_workers: int, repeats: int = 2) -> float:
    """Episodes/sec against the real environment with a cold engine.

    Every repeat rebuilds the workload so plan/hint/latency caches start
    empty — the regime where engine work dominates and fan-out pays.
    Workload construction, model init and worker startup are not timed.
    """
    rates = []
    for _ in range(repeats):
        workload = build_job_workload(scale=0.03, seed=1)
        trainer = FossTrainer(workload, bench_config(BATCH_SIZE, engine_workers))
        try:
            eligible = [wq.query for wq in workload.train if wq.query.num_tables >= 3]
            queries = [eligible[i % len(eligible)] for i in range(ENGINE_EPISODES)]
            start = time.perf_counter()
            episodes = trainer.runners[0].run(trainer.real_env, queries)
            elapsed = time.perf_counter() - start
            assert len(episodes) == len(queries)
            rates.append(len(queries) / elapsed)
        finally:
            trainer.close()
    return max(rates)


@pytest.mark.bench
def test_episode_throughput():
    workload = build_job_workload(scale=0.03, seed=1)
    eligible = [wq.query for wq in workload.train if wq.query.num_tables >= 3]
    queries = [eligible[i % len(eligible)] for i in range(NUM_EPISODES)]

    # Warm the database's shared plan/hint/latency caches so neither timed
    # mode pays one-off planning costs the other skipped.
    episodes_per_second(workload, queries, BATCH_SIZE, repeats=1)

    sequential_eps = episodes_per_second(workload, queries, batch_size=1)
    batched_eps = episodes_per_second(workload, queries, batch_size=BATCH_SIZE)
    speedup = batched_eps / sequential_eps

    local_engine_eps = engine_bound_eps(engine_workers=1)
    sharded_engine_eps = engine_bound_eps(engine_workers=ENGINE_WORKERS)
    sharded_speedup = sharded_engine_eps / local_engine_eps

    cpu_count = os.cpu_count()
    engine_bound = {
        "num_episodes": ENGINE_EPISODES,
        "engine_workers": ENGINE_WORKERS,
        "cpu_count": cpu_count,
        "local_eps": round(local_engine_eps, 2),
        "sharded_eps": round(sharded_engine_eps, 2),
        "speedup": round(sharded_speedup, 2),
    }
    if (cpu_count or 1) < 4:
        engine_bound["note"] = (
            f"recorded on a {cpu_count}-core machine: the sharded number "
            "measures IPC overhead, not scaling; the >= 1.5x bar applies "
            "only on >= 4 cores"
        )
    update_results(
        {
            "num_episodes": NUM_EPISODES,
            "episode_batch_size": BATCH_SIZE,
            "sequential_eps": round(sequential_eps, 2),
            "batched_eps": round(batched_eps, 2),
            "speedup": round(speedup, 2),
            "engine_bound": engine_bound,
        }
    )

    print(
        f"\n=== episode throughput: sequential {sequential_eps:.1f} eps, "
        f"batched(B={BATCH_SIZE}) {batched_eps:.1f} eps, {speedup:.1f}x | "
        f"engine-bound: local {local_engine_eps:.1f} eps, "
        f"sharded(W={ENGINE_WORKERS}) {sharded_engine_eps:.1f} eps, "
        f"{sharded_speedup:.2f}x ==="
    )
    assert speedup >= 3.0, (
        f"lockstep batching must be >= 3x sequential, got {speedup:.2f}x "
        f"({sequential_eps:.1f} -> {batched_eps:.1f} eps)"
    )
    if (os.cpu_count() or 1) >= 4:
        assert sharded_speedup >= 1.5, (
            f"sharded backend must be >= 1.5x the single-process batched path "
            f"on >= 4 cores, got {sharded_speedup:.2f}x "
            f"({local_engine_eps:.1f} -> {sharded_engine_eps:.1f} eps)"
        )
