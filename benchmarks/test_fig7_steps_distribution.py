"""Fig. 7: distribution of the step index at which each query's known best
plan was found, under different ``maxsteps`` settings.

Expected shape: effective plans concentrate on steps 1-3; with maxsteps=2 a
pile-up at step 2 suggests 2 is insufficient; with maxsteps=5 steps 4-5 are
rare — the paper's argument for maxsteps=3.
"""

from typing import Dict

import pytest

from repro.core.trainer import FossTrainer
from repro.experiments.reporting import render_steps_distribution

from conftest import small_foss_config

MAXSTEPS_SETTINGS = (2, 3, 4, 5)


@pytest.mark.benchmark(group="fig7")
def test_fig7_steps_distribution(registry, benchmark, capsys):
    workload = registry.workloads["job"]
    distribution: Dict[int, Dict[int, int]] = {}
    trainers: Dict[int, FossTrainer] = {}

    for max_steps in MAXSTEPS_SETTINGS:
        if max_steps == 3:
            trainer = registry.foss_trainer("job")
        else:
            trainer = FossTrainer(workload, small_foss_config(max_steps=max_steps, seed=70 + max_steps))
            trainer.train(iterations=2)
        trainers[max_steps] = trainer
        optimizer = trainer.make_optimizer()
        counts: Dict[int, int] = {step: 0 for step in range(max_steps + 1)}
        for wq in workload.all_queries:
            counts[optimizer.optimize(wq.query).chosen_step] += 1
        distribution[max_steps] = counts

    optimizer = trainers[3].make_optimizer()
    benchmark(lambda: optimizer.optimize(workload.all_queries[0].query))

    with capsys.disabled():
        print("\n=== Fig. 7: chosen-step distribution per maxsteps setting ===")
        print(render_steps_distribution(distribution))

    for max_steps, counts in distribution.items():
        assert sum(counts.values()) == len(workload.all_queries)
        # Every chosen step respects the setting's bound.
        assert max(step for step, c in counts.items() if c > 0) <= max_steps
