"""Table II: design-choice ablations on JOB.

Configurations: maxsteps in {2,3,4,5}, Off-Simulated, Off-Penalty,
Off-Validation, 2-Agents.  Reported: training time, mean optimization time,
GMRL on the full JOB workload.

Expected shape: maxsteps=3 is the sweet spot; Off-Simulated needs far more
wall time per unit of progress; Off-Penalty and Off-Validation degrade
GMRL; 2-Agents matches or beats 1 agent at higher cost.
"""

import time
import zlib
from typing import Dict, List

import numpy as np
import pytest

from repro.core.trainer import FossTrainer
from repro.experiments.harness import evaluate_optimizer
from repro.experiments.reporting import render_ablation_table

from conftest import BENCH_ITERS, small_foss_config

ABLATION_ITERS = max(2, BENCH_ITERS // 2)


def _run_config(workload, label: str, **overrides) -> Dict[str, object]:
    # NB: crc32, not builtin hash() — hash(str) varies with PYTHONHASHSEED
    # and made the ablation seeds differ run to run.
    config = small_foss_config(seed=100 + zlib.crc32(label.encode("utf-8")) % 50, **overrides)
    trainer = FossTrainer(workload, config)
    start = time.perf_counter()
    iters = ABLATION_ITERS
    if not config.use_simulated:
        iters = max(1, ABLATION_ITERS // 2)  # real-env episodes are costly
    trainer.train(iterations=iters)
    training_time = time.perf_counter() - start
    optimizer = trainer.make_optimizer()
    evaluation = evaluate_optimizer(workload.database, workload.all_queries, optimizer)
    return {
        "experiment": label,
        "training_time_s": training_time,
        "optimization_ms": float(np.mean(evaluation.optimization_ms)),
        "gmrl": evaluation.gmrl,
        "_trainer": trainer,
    }


@pytest.mark.benchmark(group="table2")
def test_table2_ablations(registry, benchmark, capsys):
    workload = registry.workloads["job"]
    rows: List[Dict[str, object]] = []
    for max_steps in (2, 3, 4, 5):
        label = f"{max_steps}-Maxsteps" + (" (FOSS)" if max_steps == 3 else "")
        rows.append(_run_config(workload, label, max_steps=max_steps))
    rows.append(_run_config(workload, "Off-Simulated", use_simulated=False))
    rows.append(_run_config(workload, "Off-Penalty", use_penalty=False))
    rows.append(_run_config(workload, "Off-Validation", use_validation=False))
    rows.append(_run_config(workload, "2-Agents", num_agents=2))

    trainer = rows[1]["_trainer"]
    benchmark(lambda: trainer.planners[0].run_episode(trainer.sim_env, workload.train[0].query))

    with capsys.disabled():
        print("\n=== Table II: design-choice ablations (JOB, reduced budgets) ===")
        print(render_ablation_table(rows))

    by_label = {str(r["experiment"]): r for r in rows}
    # Larger maxsteps costs more optimization time per query.
    assert by_label["5-Maxsteps"]["optimization_ms"] > by_label["2-Maxsteps"]["optimization_ms"]
    # The doubled agent count roughly doubles candidates => more time.
    assert by_label["2-Agents"]["optimization_ms"] > by_label["2-Maxsteps"]["optimization_ms"]
