"""Fig. 8: known-best-plan analysis on the full JOB workload.

For each method, the best plan it ever produced per query is compared with
the expert's original plan; queries are ranked by time-savings ratio, and
the counts saving >=25% / >=75% are reported.

Expected shape: FOSS (and Balsa, which searches the same space without
assurance) lead; Bao trails (few hint-set arms = tiny search space).
"""

from typing import Dict

import pytest

from repro.experiments.harness import known_best_analysis
from repro.experiments.reporting import render_known_best

from conftest import BENCH_SCALE

METHODS = ["Bao", "Balsa", "Loger", "HybridQO", "FOSS"]

# The FOSS-vs-Bao shape only emerges once the model has data to learn
# from; at smoke budgets (CI runs 0.01) the figure is recorded but the
# shape is not asserted.
SHAPE_ASSERT_MIN_SCALE = 0.02


def _best_latencies(registry, workload, method) -> Dict[str, float]:
    """Best executed latency per query across this method's inference runs."""
    db = workload.database
    optimizer = registry.optimizer(method, "job")
    best: Dict[str, float] = {}
    for wq in workload.all_queries:
        plan = optimizer.optimize(wq.query).plan
        latency = db.execute(wq.query, plan).latency_ms
        best[wq.query_id] = min(best.get(wq.query_id, float("inf")), latency)
    if method == "FOSS":
        # FOSS's training additionally explored the execution buffer.
        trainer = registry.foss_trainer("job")
        for wq in workload.all_queries:
            for record in trainer.buffer.records_for(wq.query):
                if not record.timed_out:
                    best[wq.query_id] = min(best.get(wq.query_id, float("inf")), record.latency_ms)
    return best


@pytest.mark.benchmark(group="fig8")
def test_fig8_known_best(registry, benchmark, capsys):
    workload = registry.workloads["job"]
    results = [
        known_best_analysis(workload.database, workload.all_queries, method,
                            _best_latencies(registry, workload, method))
        for method in METHODS
    ]

    foss = registry.optimizer("FOSS", "job")
    benchmark(lambda: foss.optimize(workload.all_queries[0].query))

    with capsys.disabled():
        print("\n=== Fig. 8: known best plans vs the expert (full JOB) ===")
        print(render_known_best(results))

    by_method = {r.method: r for r in results}
    # Shape: FOSS's known best beats the expert on at least as many queries
    # as Bao's (limited search space).
    if BENCH_SCALE >= SHAPE_ASSERT_MIN_SCALE:
        assert (
            by_method["FOSS"].queries_saving_at_least(0.25)
            >= by_method["Bao"].queries_saving_at_least(0.25)
        )
