"""Hot-path profile: op-level counters over one batched episode cohort.

Runs a full lockstep cohort (policy forwards + AAM statevec forwards +
plan encoding) under :mod:`repro.nn.profile` and records the op mix into
the ``hotpath_profile`` section of ``BENCH_throughput.json``.

Two invariants are asserted, not just recorded:

* **zero tape nodes** — episode collection runs entirely under
  ``no_grad``, so a full policy+AAM forward must never construct an
  autograd node.  Any regression here silently reverts the inference
  fast path to the (much slower) tape-building path.
* the fast path still *produces* tensors (``inference_tensors > 0``),
  i.e. the counter is live and the assertion above is not vacuous.

Budget scales with ``REPRO_BENCH_SCALE`` / ``REPRO_PROFILE_EPISODES`` so
CI can run it as a smoke check (see the smoke-bench job).
"""

import os

import pytest
from bench_results import update_results

from repro.core.aam import AAMConfig
from repro.core.trainer import FossConfig, FossTrainer
from repro.nn import profile
from repro.workloads.job import build_job_workload

PROFILE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
PROFILE_EPISODES = int(os.environ.get("REPRO_PROFILE_EPISODES", "64"))
BATCH_SIZE = 64


@pytest.mark.bench
def test_profile_hotpath():
    workload = build_job_workload(scale=PROFILE_SCALE, seed=1)
    config = FossConfig(
        max_steps=3,
        episode_batch_size=BATCH_SIZE,
        seed=23,
        aam=AAMConfig(epochs=1),
    )
    trainer = FossTrainer(workload, config)
    runner = trainer.runners[0]
    eligible = [wq.query for wq in workload.train if wq.query.num_tables >= 3]
    assert eligible, "profile workload produced no >=3-table queries"
    queries = [eligible[i % len(eligible)] for i in range(PROFILE_EPISODES)]

    # Warm plan/hint caches so the profiled cohort measures the steady
    # state (model + encoding), not one-off expert planning.
    runner.run(trainer.sim_env, queries)

    with profile.profile() as prof:
        episodes = runner.run(trainer.sim_env, queries)
    assert len(episodes) == len(queries)

    snapshot = prof.as_dict()

    # The whole cohort runs under no_grad: a single tape node means some
    # forward escaped the inference fast path.
    assert prof.tape_nodes == 0, (
        f"episode collection built {prof.tape_nodes} tape nodes; "
        "the no_grad fast path has regressed"
    )
    assert prof.inference_tensors > 0, "op counters recorded nothing"

    # Training (PPO update) *must* build a tape — proves the counter is
    # live rather than permanently short-circuited.
    profile.COUNTERS.reset()
    trainer.planners[0].update_from_episodes(episodes)
    assert profile.COUNTERS.tape_nodes > 0, (
        "PPO update built no tape nodes; the tape_nodes counter is dead"
    )

    top_ops = dict(list(snapshot["ops"].items())[:8])  # as_dict sorts by calls
    update_results(
        {
            "hotpath_profile": {
                "scale": PROFILE_SCALE,
                "num_episodes": PROFILE_EPISODES,
                "episode_batch_size": BATCH_SIZE,
                "tape_nodes": snapshot["tape_nodes"],
                "inference_tensors": snapshot["inference_tensors"],
                "total_calls": snapshot["total_calls"],
                "total_mb": round(snapshot["total_bytes"] / 1e6, 2),
                "top_ops": top_ops,
            }
        }
    )
    print("\n=== hot-path profile (batched cohort, no_grad) ===")
    for op, stats in top_ops.items():
        print(f"  {op:<16} calls={stats['calls']:<8} ms={stats['ms']}")
