"""What repro.obs costs on the serving hot path (the ≤5% contract).

The same threaded serving trace is driven through fresh services with
observability fully engaged (tracing on, every submit ``traced=True``)
and fully disabled (``obs.set_enabled(False)`` — the ``REPRO_OBS=0``
path), in alternating A/B rounds with medians, so drift on a noisy CI
box hits both sides equally.  The contract under test:

* disabled runs take the exact pre-obs code path — zero spans recorded,
  plans bitwise-identical to the enabled runs and to sequential serving;
* the enabled/disabled throughput ratio stays within
  ``REPRO_OBS_OVERHEAD_MAX`` (default 1.05, i.e. ≤5% overhead).

The ratio lands in the ``serving.obs_overhead`` block of
``BENCH_throughput.json``; a Prometheus scrape and a JSON snapshot of
the live registry are written next to it (``BENCH_obs_scrape.prom`` /
``BENCH_obs_snapshot.json``) as CI artifacts.

Run with ``pytest benchmarks/test_obs_overhead.py`` (excluded from
tier-1 by ``testpaths``).
"""

from __future__ import annotations

import json
import os
import statistics

import pytest
from bench_results import RESULTS_PATH, update_results
from test_serving_throughput import CLIENT_THREADS, drive, serving_config, serving_trace

from repro import obs
from repro.api import FossSession
from repro.optimizer.plans import plan_signature
from repro.workloads.job import build_job_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
OVERHEAD_MAX = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "1.05"))
ROUNDS = int(os.environ.get("REPRO_OBS_BENCH_ROUNDS", "5"))


@pytest.mark.bench
def test_obs_overhead():
    workload = build_job_workload(scale=BENCH_SCALE, seed=1)
    sqls = serving_trace(workload)
    with FossSession.open(workload=workload, config=serving_config()) as session:
        # Sequential ground truth + cache warm-up (identical marginal cost
        # per request for every timed run below).
        reference = {
            sql: plan_signature(session.service().optimize_sql(sql).plan)
            for sql in set(sqls)
        }

        rates = {"off": [], "on": []}
        signatures = {}
        previous = obs.enabled()
        try:
            for _ in range(ROUNDS):
                # Alternate within each round: off then on, so slow drift
                # (thermal, other tenants) cancels out of the ratio.
                for mode in ("off", "on"):
                    obs.set_enabled(mode == "on")
                    tracer = obs.get_tracer()
                    tracer.clear()
                    service = session.service(max_batch_size=16)
                    with service.start(flush_interval_ms=2.0):
                        rate, results = drive(
                            service,
                            sqls,
                            CLIENT_THREADS,
                            submit_kwargs=dict(traced=True),
                        )
                    rates[mode].append(rate)
                    signatures[mode] = [
                        plan_signature(r.plan.plan) for r in results
                    ]
                    if mode == "off":
                        # The disabled path is the exact pre-obs path:
                        # no trace ids minted, not one span recorded.
                        assert len(tracer) == 0, "disabled run recorded spans"
                    else:
                        assert len(tracer) > 0, "enabled run recorded no spans"
        finally:
            obs.set_enabled(previous)

        # Bitwise plan parity: obs on/off and sequential all agree.
        expected = [reference[sql] for sql in sqls]
        assert signatures["off"] == expected
        assert signatures["on"] == expected

    # Best-of-rounds for the asserted ratio: a shared CI box stalls runs
    # at random, and the fastest round of each mode is the one least
    # polluted by interference.  Medians ride along in the payload.
    rps_off = max(rates["off"])
    rps_on = max(rates["on"])
    overhead = rps_off / rps_on if rps_on else 0.0

    # CI artifacts: a real Prometheus scrape and a JSON snapshot of the
    # registry the enabled runs populated.
    scrape_path = RESULTS_PATH.parent / "BENCH_obs_scrape.prom"
    snapshot_path = RESULTS_PATH.parent / "BENCH_obs_snapshot.json"
    obs.dump(str(scrape_path), registry=obs.get_registry(), fmt="prometheus")
    obs.dump(
        str(snapshot_path),
        registry=obs.get_registry(),
        tracer=obs.get_tracer(),
        sources=obs.snapshot_sources(),
        fmt="json",
    )
    assert "serving_latency_ms" in scrape_path.read_text()
    json.loads(snapshot_path.read_text())

    # Merge into the serving section without clobbering sibling benches.
    existing_serving = {}
    try:
        existing_serving = json.loads(RESULTS_PATH.read_text()).get("serving", {})
    except (ValueError, OSError):
        pass
    existing_serving["obs_overhead"] = {
        "rps_obs_off": round(rps_off, 2),
        "rps_obs_on": round(rps_on, 2),
        "overhead_x": round(overhead, 3),
        "median_rps_obs_off": round(statistics.median(rates["off"]), 2),
        "median_rps_obs_on": round(statistics.median(rates["on"]), 2),
        "rounds": ROUNDS,
        "client_threads": CLIENT_THREADS,
        "budget_x": OVERHEAD_MAX,
    }
    update_results({"serving": existing_serving})

    print(
        f"\n=== obs overhead: off {rps_off:.1f} req/s, on {rps_on:.1f} req/s "
        f"({overhead:.3f}x, budget {OVERHEAD_MAX}x) over {ROUNDS} rounds ==="
    )
    assert overhead <= OVERHEAD_MAX, (
        f"observability costs {overhead:.3f}x on the serving hot path "
        f"(budget {OVERHEAD_MAX}x)"
    )
