"""Fig. 4: relative total-latency speedup of FOSS over every other method,
per workload and split.

Expected shape: every entry >= ~1 (FOSS fastest on average); the largest
margins appear on JOB.
"""

import pytest

from repro.experiments.reporting import render_relative_speedup

METHODS = ["PostgreSQL", "Bao", "Balsa", "Loger", "HybridQO", "FOSS"]
WORKLOADS = ["job", "tpcds", "stack"]


@pytest.mark.benchmark(group="fig4")
def test_fig4_relative_speedup(registry, benchmark, capsys):
    results = [registry.result(method, wl) for method in METHODS for wl in WORKLOADS]

    foss = registry.optimizer("FOSS", "job")
    query = registry.workloads["job"].test[1].query
    benchmark(lambda: foss.optimize(query))

    with capsys.disabled():
        print("\n=== Fig. 4: relative speedup of FOSS over other methods ===")
        print(render_relative_speedup(results))

    pg = registry.result("PostgreSQL", "job")
    foss_result = registry.result("FOSS", "job")
    assert foss_result.train.total_runtime_s <= pg.train.total_runtime_s * 1.05
