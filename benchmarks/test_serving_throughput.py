"""Serving-throughput micro-bench: 1 vs N client threads.

Drives a started ``OptimizerService`` (background flusher, micro-batched
submissions) with a shuffled serving trace from 1 and from N concurrent
client threads, and records requests/sec for both into the ``serving``
section of ``BENCH_throughput.json`` (read-modify-write: the episode
bench's sections are preserved).

Interpretation: the GIL plus a CPython-bound optimizer means client
threads cannot add compute — what threading buys is *overlap* (clients
submit/bind while the flusher plans) and bigger micro-batches per flush.
On the 1-CPU CI box the threaded number mostly measures lock/condvar
overhead and is NOT meaningful as a speedup; the machine block rides
along so the figure cannot be misread.  No speedup is asserted — the
assertions are parity (threaded plans == sequential plans) and liveness.

Run with ``pytest benchmarks/test_serving_throughput.py`` (excluded from
tier-1 by ``testpaths``).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest
from bench_results import RESULTS_PATH, update_results

from repro.api import FossConfig, FossSession
from repro.core.aam import AAMConfig
from repro.optimizer.plans import plan_signature
from repro.workloads.job import build_job_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
NUM_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "96"))
CLIENT_THREADS = int(os.environ.get("REPRO_SERVE_THREADS", "4"))
UNIQUE_QUERIES = 12
WAIT_S = 120.0


def serving_config() -> FossConfig:
    return FossConfig(
        max_steps=3,
        seed=23,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )


def serving_trace(workload) -> list:
    sqls = [wq.sql for wq in workload.train[:UNIQUE_QUERIES]]
    rng = np.random.default_rng(5)
    return [sqls[i] for i in rng.permutation(
        np.arange(NUM_REQUESTS) % len(sqls)
    )]


def drive(service, sqls, num_threads: int, submit_kwargs=None):
    """(requests/sec, results) for ``num_threads`` submit+wait client threads."""
    results = [None] * len(sqls)
    errors = []
    kwargs = submit_kwargs or {}

    def client(thread_index: int) -> None:
        try:
            for i in range(thread_index, len(sqls), num_threads):
                ticket = service.submit(sqls[i], **kwargs)
                results[i] = service.wait(ticket, timeout=WAIT_S)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=client, args=(t,), daemon=True)
        for t in range(num_threads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT_S)
    elapsed = time.perf_counter() - start
    assert not any(thread.is_alive() for thread in threads), "clients hung"
    assert not errors, errors
    assert all(result is not None and result.ok for result in results)
    return len(sqls) / elapsed, results


@pytest.mark.bench
def test_serving_throughput():
    workload = build_job_workload(scale=BENCH_SCALE, seed=1)
    sqls = serving_trace(workload)
    with FossSession.open(workload=workload, config=serving_config()) as session:
        # Sequential ground truth (and engine/model cache warm-up, so both
        # timed runs below pay the same marginal cost per request).
        reference = {
            sql: plan_signature(session.service().optimize_sql(sql).plan)
            for sql in set(sqls)
        }

        rates = {}
        outcomes = {}
        for num_threads in (1, CLIENT_THREADS):
            service = session.service(max_batch_size=16)
            with service.start(flush_interval_ms=2.0):
                rates[num_threads], results = drive(service, sqls, num_threads)
            outcomes[num_threads] = service.stats()
            # Concurrency parity: plans are bitwise-identical to the
            # sequential single-threaded path, whatever the thread count.
            assert [plan_signature(r.plan.plan) for r in results] == [
                reference[sql] for sql in sqls
            ]

    speedup = rates[CLIENT_THREADS] / rates[1]
    cpu_count = os.cpu_count()
    payload = {
        "num_requests": NUM_REQUESTS,
        "unique_queries": UNIQUE_QUERIES,
        "client_threads": CLIENT_THREADS,
        "rps_1_thread": round(rates[1], 2),
        f"rps_{CLIENT_THREADS}_threads": round(rates[CLIENT_THREADS], 2),
        "threaded_vs_single": round(speedup, 2),
        "mean_batch_occupancy_threaded": round(
            outcomes[CLIENT_THREADS]["mean_batch_occupancy"], 2
        ),
        "cache_hit_rate": round(outcomes[CLIENT_THREADS]["cache_hit_rate"], 3),
    }
    if (cpu_count or 1) < 4:
        payload["note"] = (
            f"recorded on a {cpu_count}-core machine: the threaded number "
            "measures lock/condvar overhead under the GIL, not a speedup"
        )
    update_results({"serving": payload})

    print(
        f"\n=== serving throughput: 1 thread {rates[1]:.1f} req/s, "
        f"{CLIENT_THREADS} threads {rates[CLIENT_THREADS]:.1f} req/s "
        f"({speedup:.2f}x) over {NUM_REQUESTS} requests ==="
    )
    # Liveness + accounting; plan parity was asserted per run above.
    for stats in outcomes.values():
        assert stats["requests"] == stats["served"] + stats["failures"]
        assert stats["failures"] == 0
        assert stats["pending"] == 0


@pytest.mark.bench
def test_admission_control_overhead():
    """What the request-lifecycle machinery costs on the serving hot path.

    The same threaded trace is driven twice: once through a bare service
    (no queue bound, no contexts minted beyond the defaults) and once
    with the full lifecycle engaged — ``max_pending`` admission checks on
    every submit plus a generous per-request ``deadline_s`` (so every
    budget check runs but nothing ever expires).  The ratio lands in the
    ``serving.admission`` block of ``BENCH_throughput.json``.  No bound
    is asserted — both numbers are lock-dominated on a 1-CPU box — only
    the lifecycle accounting (nothing rejected, nothing expired, same
    plans).
    """
    workload = build_job_workload(scale=BENCH_SCALE, seed=1)
    sqls = serving_trace(workload)
    with FossSession.open(workload=workload, config=serving_config()) as session:
        reference = {
            sql: plan_signature(session.service().optimize_sql(sql).plan)
            for sql in set(sqls)
        }

        runs = {
            "unguarded": (dict(), None),
            "guarded": (
                dict(max_pending=max(len(sqls), 1)),
                dict(deadline_s=600.0, priority=0),
            ),
        }
        rates = {}
        stats = {}
        for name, (service_kwargs, submit_kwargs) in runs.items():
            service = session.service(max_batch_size=16, **service_kwargs)
            with service.start(flush_interval_ms=2.0):
                rates[name], results = drive(
                    service, sqls, CLIENT_THREADS, submit_kwargs=submit_kwargs
                )
            stats[name] = service.stats()
            assert [plan_signature(r.plan.plan) for r in results] == [
                reference[sql] for sql in sqls
            ]

    guarded = stats["guarded"]
    assert guarded["rejected"] == 0 and guarded["expired"] == 0
    assert guarded["requests"] == guarded["served"]
    overhead = rates["unguarded"] / rates["guarded"] if rates["guarded"] else 0.0

    # Merge into the serving section without clobbering the throughput
    # bench's keys (update_results replaces whole top-level sections).
    existing_serving = {}
    try:
        existing_serving = json.loads(RESULTS_PATH.read_text()).get("serving", {})
    except (ValueError, OSError):
        pass
    existing_serving["admission"] = {
        "rps_unguarded": round(rates["unguarded"], 2),
        "rps_guarded": round(rates["guarded"], 2),
        "overhead_x": round(overhead, 3),
        "max_pending": max(len(sqls), 1),
        "deadline_s": 600.0,
        "stage_total_p95_ms": round(guarded["stage_total_p95_ms"], 3),
        "stage_queue_p95_ms": round(guarded["stage_queue_p95_ms"], 3),
    }
    update_results({"serving": existing_serving})

    print(
        f"\n=== admission/deadline overhead: unguarded "
        f"{rates['unguarded']:.1f} req/s, guarded {rates['guarded']:.1f} "
        f"req/s ({overhead:.3f}x) over {NUM_REQUESTS} requests ==="
    )
