"""Fig. 5: training curves — test-workload speedup vs the expert over
training time, for each learned method.

Expected shape: FOSS rises above 1.0 quickly (original-plan assurance);
Balsa starts far below 1.0 (no assurance) and climbs slowly.
"""

import pytest

from repro.experiments.reporting import render_training_curves

METHODS = ["Bao", "Balsa", "Loger", "HybridQO", "FOSS"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_training_curves(registry, benchmark, capsys):
    curves = [registry.curve(method, "job") for method in METHODS if method in ("Balsa", "FOSS")]
    # Bao/Loger/HybridQO train in one shot here; report their final point.
    for method in ("Bao", "Loger", "HybridQO"):
        curve = registry.curve(method, "job")
        if not curve.times_s:
            result = registry.result(method, "job")
            speedup = result.test.expert_total_runtime_s / max(result.test.total_runtime_s, 1e-9)
            curve.record(result.training_time_s, speedup, result.test.gmrl)
        curves.append(curve)

    trainer = registry.foss_trainer("job")
    benchmark(lambda: trainer.planners[0].run_episode(trainer.sim_env, registry.workloads["job"].train[0].query))

    with capsys.disabled():
        print("\n=== Fig. 5: training curves (speedup vs expert over training time) ===")
        print(render_training_curves(curves, value="speedup"))

    foss_curve = registry.curve("FOSS", "job")
    assert foss_curve.speedups, "FOSS curve must have recorded points"
    # Original-plan assurance: FOSS's *execution latency* never collapses
    # (GMRL stays near or below 1 throughout training).  Total-runtime
    # speedup is not asserted: at toy scale, model-inference overhead
    # dominates sub-millisecond queries.
    assert max(foss_curve.gmrls) < 1.5
