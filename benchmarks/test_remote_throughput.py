"""Remote-engine micro-bench: serving over a socket vs in-process.

Stands up an in-thread ``EngineServer`` over its own engine (rebuilt from
the spec, so client and server genuinely do not share caches), then
records into the ``remote`` section of ``BENCH_throughput.json`` (via the
shared read-modify-write helper, so the episode/serving sections survive):

* ``ping_rps`` — raw framed-RPC round trips per second: the ceiling the
  wire format + pickling imposes;
* ``serve_local_rps`` / ``serve_remote_rps`` — a serving trace through
  ``optimize_sql`` with the engine in-process vs behind the socket.

Interpretation: on one box (and especially the 1-CPU CI container) the
remote figure measures framing/RPC overhead, NOT scaling — client and
server compete for the same core and every RPC pays a loopback round
trip.  The subsystem pays off when the server owns different hardware.
No speedup is asserted; the assertions are parity (remote plans ==
in-process plans) and liveness.

Run with ``pytest benchmarks/test_remote_throughput.py`` (excluded from
tier-1 by ``testpaths``).
"""

from __future__ import annotations

import os
import time

import numpy as np
from bench_results import update_results

from repro.api import FossConfig, FossSession
from repro.core.aam import AAMConfig
from repro.engine.remote import EngineServer, RemoteBackend
from repro.optimizer.plans import plan_signature
from repro.workloads.job import build_job_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))
NUM_REQUESTS = int(os.environ.get("REPRO_REMOTE_REQUESTS", "48"))
NUM_PINGS = int(os.environ.get("REPRO_REMOTE_PINGS", "200"))
UNIQUE_QUERIES = 8


def bench_config(url: str = "") -> FossConfig:
    return FossConfig(
        max_steps=3,
        seed=23,
        engine_url=url,
        aam=AAMConfig(
            d_model=32, d_embed=8, d_state=32, num_heads=2, num_layers=1,
            ff_hidden=32, epochs=1,
        ),
    )


def serving_trace(workload) -> list:
    sqls = [wq.sql for wq in workload.train[:UNIQUE_QUERIES]]
    rng = np.random.default_rng(5)
    return [sqls[i] for i in rng.permutation(np.arange(NUM_REQUESTS) % len(sqls))]


def drive(session, trace) -> tuple:
    service = session.service()
    start = time.perf_counter()
    plans = [plan_signature(service.optimize_sql(sql).plan) for sql in trace]
    elapsed = time.perf_counter() - start
    return plans, len(trace) / max(elapsed, 1e-9)


def test_remote_serving_throughput():
    workload = build_job_workload(scale=BENCH_SCALE, seed=1)
    trace = serving_trace(workload)

    with EngineServer(workload.spec.build_database(), owns_backend=True) as server:
        server.start()

        # Raw RPC floor: one tiny frame each way per ping.
        with RemoteBackend(server.url, database=workload.database) as probe:
            start = time.perf_counter()
            for _ in range(NUM_PINGS):
                probe.ping()
            ping_rps = NUM_PINGS / max(time.perf_counter() - start, 1e-9)

        with FossSession.open(workload=workload, config=bench_config()) as local:
            local_plans, local_rps = drive(local, trace)
        with FossSession.open(
            workload=workload, config=bench_config(server.url)
        ) as remote:
            assert isinstance(remote.backend, RemoteBackend)
            remote_plans, remote_rps = drive(remote, trace)

    assert remote_plans == local_plans, "remote serving diverged from in-process"
    assert local_rps > 0 and remote_rps > 0 and ping_rps > 0

    update_results(
        {
            "remote": {
                "scale": BENCH_SCALE,
                "requests": NUM_REQUESTS,
                "unique_queries": UNIQUE_QUERIES,
                "ping_rps": round(ping_rps, 1),
                "serve_local_rps": round(local_rps, 2),
                "serve_remote_rps": round(remote_rps, 2),
                "remote_over_local": round(remote_rps / max(local_rps, 1e-9), 3),
                "note": (
                    "loopback, shared core: measures framing/RPC overhead, not "
                    "scaling; re-record with the server on separate hardware"
                ),
            }
        }
    )
