"""Fig. 6: optimization-time distribution (SQL in -> plan out) per optimizer
on the full JOB workload, as box statistics (p25/p50/p75).

Expected shape: PostgreSQL is fastest; Loger beats FOSS (no expert DP run);
FOSS beats Bao/Balsa/HybridQO (they enumerate more candidate plans).
"""

import numpy as np
import pytest

from repro.experiments.harness import optimization_times
from repro.experiments.reporting import render_box_stats

from conftest import BENCH_SCALE

METHODS = ["PostgreSQL", "Bao", "Balsa", "Loger", "HybridQO", "FOSS"]

# Sub-millisecond planning medians are dominated by scheduler jitter at
# smoke budgets (CI runs 0.01); the figure is recorded but the timing
# shape is only asserted at representative scale.
SHAPE_ASSERT_MIN_SCALE = 0.02


@pytest.mark.benchmark(group="fig6")
def test_fig6_optimization_time(registry, benchmark, capsys):
    workload = registry.workloads["job"]
    queries = workload.all_queries
    times = {}
    for method in METHODS:
        optimizer = registry.optimizer(method, "job")
        # Clear cached plans so each method pays its real planning cost
        # (the paper times SQL-in -> plan-out from cold).
        workload.database.clear_plan_cache()
        times[method] = optimization_times(workload.database, queries, optimizer)

    foss = registry.optimizer("FOSS", "job")
    benchmark(lambda: foss.optimize(queries[0].query))

    with capsys.disabled():
        print("\n=== Fig. 6: optimization time per optimizer (full JOB) ===")
        print(render_box_stats(times))

    # Shape: the expert alone is cheapest; Loger cheaper than FOSS.
    if BENCH_SCALE >= SHAPE_ASSERT_MIN_SCALE:
        assert np.median(times["PostgreSQL"]) <= np.median(times["FOSS"])
        assert np.median(times["Loger"]) <= np.median(times["FOSS"])
