"""Fig. 9: GMRL trajectories over training for the ablation configurations.

Expected shape: the default (3-Maxsteps) curve descends fastest;
Off-Validation descends slowly (AAM errors accumulate uncorrected).
"""

import time
from typing import List

import pytest

from repro.core.trainer import FossTrainer
from repro.experiments.harness import TrainingCurve, evaluate_optimizer
from repro.experiments.reporting import render_training_curves

from conftest import BENCH_ITERS, small_foss_config

CONFIGS = (
    ("3-Maxsteps", {}),
    ("Off-Penalty", {"use_penalty": False}),
    ("Off-Validation", {"use_validation": False}),
    ("2-Agents", {"num_agents": 2}),
)


@pytest.mark.benchmark(group="fig9")
def test_fig9_ablation_curves(registry, benchmark, capsys):
    workload = registry.workloads["job"]
    sample = workload.train[:16]
    curves: List[TrainingCurve] = []
    trainers = {}
    for label, overrides in CONFIGS:
        trainer = FossTrainer(workload, small_foss_config(seed=200 + hash(label) % 50, **overrides))
        trainer.bootstrap()
        optimizer = trainer.make_optimizer()
        curve = TrainingCurve(label, "job")
        start = time.perf_counter()
        for i in range(max(2, BENCH_ITERS // 2)):
            trainer.run_iteration(i)
            evaluation = evaluate_optimizer(workload.database, sample, optimizer)
            speedup = evaluation.expert_total_runtime_s / max(evaluation.total_runtime_s, 1e-9)
            curve.record(time.perf_counter() - start, speedup, evaluation.gmrl)
        curves.append(curve)
        trainers[label] = trainer

    trainer = trainers["3-Maxsteps"]
    benchmark(lambda: trainer.planners[0].run_episode(trainer.sim_env, workload.train[0].query))

    with capsys.disabled():
        print("\n=== Fig. 9: GMRL variation during training per configuration ===")
        print(render_training_curves(curves, value="gmrl"))

    for curve in curves:
        assert len(curve.gmrls) >= 2
        assert all(g > 0 for g in curve.gmrls)
