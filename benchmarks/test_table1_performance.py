"""Table I: WRL / GMRL (train + test) and workload runtime for every method
on JOB, TPC-DS and Stack.

Expected shape (paper): FOSS has the lowest WRL/GMRL overall; PostgreSQL is
the 1.0 reference; Bao's search space limits it; Balsa is unstable (TLE on
Stack at paper scale); Loger is competitive on Stack.
"""

import pytest

from repro.experiments.reporting import render_table1

METHODS = ["PostgreSQL", "Bao", "Balsa", "Loger", "HybridQO", "FOSS"]
WORKLOADS = ["job", "tpcds", "stack"]


@pytest.mark.benchmark(group="table1")
def test_table1_performance(registry, benchmark, capsys):
    results = [registry.result(method, wl) for method in METHODS for wl in WORKLOADS]

    # The benchmarked unit: FOSS end-to-end inference on one JOB query.
    foss = registry.optimizer("FOSS", "job")
    query = registry.workloads["job"].test[0].query
    benchmark(lambda: foss.optimize(query))

    table = render_table1(results, WORKLOADS)
    with capsys.disabled():
        print("\n=== Table I: method performance (reduced-budget reproduction) ===")
        print(table)
        foss_job = registry.result("FOSS", "job")
        pg_job = registry.result("PostgreSQL", "job")
        speedup = pg_job.train.total_runtime_s / max(foss_job.train.total_runtime_s, 1e-9)
        print(f"\nFOSS total-latency speedup vs PostgreSQL on JOB/train: {speedup:.2f}x")

    # Shape assertions (not absolute numbers).
    assert registry.result("PostgreSQL", "job").train.gmrl == pytest.approx(1.0)
    foss_job = registry.result("FOSS", "job")
    assert foss_job.train.wrl <= 1.05, "FOSS must not lose to the expert on JOB train"
