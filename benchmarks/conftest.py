"""Shared benchmark fixtures.

Every paper table/figure has one bench module.  Training the five learned
methods on three workloads at paper scale takes GPU-days; the benches
reproduce the *shape* at laptop scale: small data (``REPRO_BENCH_SCALE``,
default 0.05) and short training budgets (``REPRO_BENCH_ITERS``, default 6).
Raise both via environment variables for closer-to-paper runs.

Results are cached per session so Table I, Fig. 4 and Fig. 5 share one
training run per method.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.api import FossSession, create_optimizer
from repro.core.trainer import FossConfig, FossTrainer
from repro.experiments.harness import MethodResult, TrainingCurve, evaluate_optimizer
from repro.workloads.base import Workload, build_workload_by_name

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.04"))
BENCH_ITERS = int(os.environ.get("REPRO_BENCH_ITERS", "4"))
BENCH_EPISODES = int(os.environ.get("REPRO_BENCH_EPISODES", "90"))
BASELINE_ITERS = max(1, BENCH_ITERS // 3)

# Balsa's wall-clock training budget per workload; exceeding it marks TLE
# (the paper reports TLE for Balsa on Stack).
BALSA_BUDGET_S = float(os.environ.get("REPRO_BALSA_BUDGET_S", "120"))


def small_foss_config(**overrides) -> FossConfig:
    defaults = dict(
        max_steps=3,
        episodes_per_update=BENCH_EPISODES,
        bootstrap_episodes=max(30, BENCH_EPISODES // 3),
        aam_retrain_threshold=80,
        random_sample_episodes=8,
        validation_budget=120,
        seed=7,
    )
    defaults.update(overrides)
    return FossConfig(**defaults)


@pytest.fixture(scope="session")
def workloads() -> Dict[str, Workload]:
    return {
        "job": build_workload_by_name("job", scale=BENCH_SCALE, seed=1),
        "tpcds": build_workload_by_name("tpcds", scale=BENCH_SCALE, seed=2),
        "stack": build_workload_by_name("stack", scale=BENCH_SCALE, seed=3),
    }


@pytest.fixture(scope="session")
def job_workload_bench(workloads) -> Workload:
    return workloads["job"]


class MethodRegistry:
    """Trains each method once per workload and caches everything.

    Optimizers are constructed by name through the :mod:`repro.api`
    registry over one :class:`FossSession` per workload.
    """

    def __init__(self, workloads: Dict[str, Workload]) -> None:
        self.workloads = workloads
        self._sessions: Dict[str, FossSession] = {}
        self._optimizers: Dict[tuple, object] = {}
        self._results: Dict[tuple, MethodResult] = {}
        self._training_times: Dict[tuple, float] = {}
        self._curves: Dict[tuple, TrainingCurve] = {}

    # ------------------------------------------------------------------
    def session(self, workload_name: str) -> FossSession:
        if workload_name not in self._sessions:
            self._sessions[workload_name] = FossSession.open(
                workload=self.workloads[workload_name], config=small_foss_config()
            )
        return self._sessions[workload_name]

    def optimizer(self, method: str, workload_name: str):
        key = (method, workload_name)
        if key not in self._optimizers:
            self._optimizers[key] = self._train(method, workload_name)
        return self._optimizers[key]

    def foss_trainer(self, workload_name: str) -> FossTrainer:
        self.optimizer("FOSS", workload_name)
        return self.session(workload_name).trainer()

    def _train(self, method: str, workload_name: str):
        workload = self.workloads[workload_name]
        session = self.session(workload_name)
        start = time.perf_counter()
        curve = TrainingCurve(method, workload_name)
        optimizer = create_optimizer(method, session)  # raises on unknown names
        name = method.lower()  # training dispatch is case-insensitive, like the registry
        if name in ("bao", "hybridqo", "loger"):
            optimizer.train(workload.train, iterations=BASELINE_ITERS)
        elif name == "balsa":
            for _ in range(BASELINE_ITERS):
                optimizer.train(workload.train, iterations=1)
                curve.record(
                    time.perf_counter() - start,
                    *self._quick_scores(workload, optimizer),
                )
                if time.perf_counter() - start > BALSA_BUDGET_S:
                    self._training_times[(method, workload_name)] = time.perf_counter() - start
                    self._curves[(method, workload_name)] = curve
                    return _TimedOut(optimizer)
        elif name == "foss":
            trainer = session.trainer()
            trainer.bootstrap()
            for i in range(BENCH_ITERS):
                trainer.run_iteration(i)
                curve.record(
                    time.perf_counter() - start,
                    *self._quick_scores(workload, optimizer),
                )
        self._training_times[(method, workload_name)] = time.perf_counter() - start
        self._curves[(method, workload_name)] = curve
        return optimizer

    def _quick_scores(self, workload: Workload, optimizer) -> tuple:
        """(speedup, gmrl) on a small test slice for training curves."""
        sample = workload.test[: min(8, len(workload.test))]
        evaluation = evaluate_optimizer(workload.database, sample, optimizer)
        speedup = evaluation.expert_total_runtime_s / max(evaluation.total_runtime_s, 1e-9)
        return speedup, evaluation.gmrl

    # ------------------------------------------------------------------
    def result(self, method: str, workload_name: str) -> MethodResult:
        key = (method, workload_name)
        if key not in self._results:
            workload = self.workloads[workload_name]
            optimizer = self.optimizer(method, workload_name)
            timed_out = isinstance(optimizer, _TimedOut)
            inner = optimizer.inner if timed_out else optimizer
            train_eval = evaluate_optimizer(workload.database, workload.train, inner)
            test_eval = evaluate_optimizer(workload.database, workload.test, inner)
            self._results[key] = MethodResult(
                method=method,
                workload=workload_name,
                train=train_eval,
                test=test_eval,
                training_time_s=self._training_times.get(key, 0.0),
                timed_out=timed_out,
            )
        return self._results[key]

    def curve(self, method: str, workload_name: str) -> TrainingCurve:
        self.optimizer(method, workload_name)
        return self._curves[(method, workload_name)]


class _TimedOut:
    """Marker wrapper: training exceeded the budget (reported as TLE)."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def optimize(self, query):
        return self.inner.optimize(query)


@pytest.fixture(scope="session")
def registry(workloads) -> MethodRegistry:
    return MethodRegistry(workloads)
