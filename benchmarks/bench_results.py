"""Shared read-modify-write access to ``BENCH_throughput.json``.

Several benches (episode throughput, serving throughput) record into one
results file at the repo root; each must merge its keys and leave the
other sections intact, or they clobber each other on every run.  Machine
metadata is stamped on every update so numbers recorded on a small box
(e.g. the 1-CPU CI container) cannot be misread later.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Dict

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def update_results(updates: Dict) -> None:
    """Merge ``updates`` into the results file, preserving other sections."""
    existing = {}
    if RESULTS_PATH.exists():
        try:
            existing = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    existing.update(updates)
    existing["machine"] = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")
